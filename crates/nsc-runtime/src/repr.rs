//! `Send + Sync` mirrors of [`Type`] and [`EvalError`].
//!
//! [`Type`] interns its subterms behind `Rc`, so it cannot cross threads
//! — but the compiled-program cache must be shared across serving
//! threads.  [`TypeRepr`] is the same tree over `Box`, stored in cache
//! entries and rebuilt into a real [`Type`] on whichever thread needs to
//! encode or decode values (an `O(|type|)` conversion, paid once per
//! `BatchRunner`, never per request).  [`ErrorRepr`] extends the same
//! treatment to [`EvalError`] (whose `Translation` variant embeds types)
//! so compile *failures* can be negatively cached and handed back to
//! every thread structurally intact.

use nsc_core::error::{EvalError, TypeError};
use nsc_core::types::Type;

/// A thread-portable NSC type (same grammar as [`Type`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeRepr {
    /// `unit`.
    Unit,
    /// `N`.
    Nat,
    /// `s × t`.
    Prod(Box<TypeRepr>, Box<TypeRepr>),
    /// `s + t`.
    Sum(Box<TypeRepr>, Box<TypeRepr>),
    /// `[t]`.
    Seq(Box<TypeRepr>),
}

impl TypeRepr {
    /// Mirrors a [`Type`].
    pub fn of(t: &Type) -> TypeRepr {
        match t {
            Type::Unit => TypeRepr::Unit,
            Type::Nat => TypeRepr::Nat,
            Type::Prod(a, b) => {
                TypeRepr::Prod(Box::new(TypeRepr::of(a)), Box::new(TypeRepr::of(b)))
            }
            Type::Sum(a, b) => TypeRepr::Sum(Box::new(TypeRepr::of(a)), Box::new(TypeRepr::of(b))),
            Type::Seq(s) => TypeRepr::Seq(Box::new(TypeRepr::of(s))),
        }
    }

    /// Rebuilds the real [`Type`] on the calling thread.
    pub fn to_type(&self) -> Type {
        match self {
            TypeRepr::Unit => Type::Unit,
            TypeRepr::Nat => Type::Nat,
            TypeRepr::Prod(a, b) => Type::prod(a.to_type(), b.to_type()),
            TypeRepr::Sum(a, b) => Type::sum(a.to_type(), b.to_type()),
            TypeRepr::Seq(s) => Type::seq(s.to_type()),
        }
    }
}

/// A thread-portable [`TypeError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeErrorRepr {
    /// Mirror of [`TypeError::UnboundVariable`].
    UnboundVariable(String),
    /// Mirror of [`TypeError::UnknownFunction`].
    UnknownFunction(String),
    /// Mirror of [`TypeError::Mismatch`].
    Mismatch {
        /// Where the mismatch occurred.
        context: &'static str,
        /// The type that was required.
        expected: TypeRepr,
        /// The type that was found.
        found: TypeRepr,
    },
    /// Mirror of [`TypeError::WrongShape`].
    WrongShape {
        /// Where the error occurred.
        context: &'static str,
        /// The offending type.
        found: TypeRepr,
    },
    /// Mirror of [`TypeError::CannotInfer`].
    CannotInfer(&'static str),
}

impl TypeErrorRepr {
    /// Mirrors a [`TypeError`].
    pub fn of(e: &TypeError) -> TypeErrorRepr {
        match e {
            TypeError::UnboundVariable(x) => TypeErrorRepr::UnboundVariable(x.clone()),
            TypeError::UnknownFunction(x) => TypeErrorRepr::UnknownFunction(x.clone()),
            TypeError::Mismatch {
                context,
                expected,
                found,
            } => TypeErrorRepr::Mismatch {
                context,
                expected: TypeRepr::of(expected),
                found: TypeRepr::of(found),
            },
            TypeError::WrongShape { context, found } => TypeErrorRepr::WrongShape {
                context,
                found: TypeRepr::of(found),
            },
            TypeError::CannotInfer(context) => TypeErrorRepr::CannotInfer(context),
        }
    }

    /// Rebuilds the real [`TypeError`].
    pub fn to_error(&self) -> TypeError {
        match self {
            TypeErrorRepr::UnboundVariable(x) => TypeError::UnboundVariable(x.clone()),
            TypeErrorRepr::UnknownFunction(x) => TypeError::UnknownFunction(x.clone()),
            TypeErrorRepr::Mismatch {
                context,
                expected,
                found,
            } => TypeError::Mismatch {
                context,
                expected: expected.to_type(),
                found: found.to_type(),
            },
            TypeErrorRepr::WrongShape { context, found } => TypeError::WrongShape {
                context,
                found: found.to_type(),
            },
            TypeErrorRepr::CannotInfer(context) => TypeError::CannotInfer(context),
        }
    }
}

/// A thread-portable [`EvalError`] (structurally faithful: converting
/// there and back yields an equal error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorRepr {
    /// Mirror of [`EvalError::Omega`].
    Omega,
    /// Mirror of [`EvalError::UnboundVariable`].
    UnboundVariable(String),
    /// Mirror of [`EvalError::UnknownFunction`].
    UnknownFunction(String),
    /// Mirror of [`EvalError::GetNonSingleton`].
    GetNonSingleton(usize),
    /// Mirror of [`EvalError::ZipLengthMismatch`].
    ZipLengthMismatch(usize, usize),
    /// Mirror of [`EvalError::SplitSumMismatch`].
    SplitSumMismatch {
        /// Length of the sequence being split.
        have: u64,
        /// Sum of the requested segment lengths.
        want: u64,
    },
    /// Mirror of [`EvalError::DivisionByZero`].
    DivisionByZero,
    /// Mirror of [`EvalError::Stuck`].
    Stuck(&'static str),
    /// Mirror of [`EvalError::FuelExhausted`].
    FuelExhausted,
    /// Mirror of [`EvalError::MachineFault`].
    MachineFault(String),
    /// Mirror of [`EvalError::Translation`].
    Translation(TypeErrorRepr),
}

impl ErrorRepr {
    /// Mirrors an [`EvalError`].
    pub fn of(e: &EvalError) -> ErrorRepr {
        match e {
            EvalError::Omega => ErrorRepr::Omega,
            EvalError::UnboundVariable(x) => ErrorRepr::UnboundVariable(x.clone()),
            EvalError::UnknownFunction(x) => ErrorRepr::UnknownFunction(x.clone()),
            EvalError::GetNonSingleton(n) => ErrorRepr::GetNonSingleton(*n),
            EvalError::ZipLengthMismatch(a, b) => ErrorRepr::ZipLengthMismatch(*a, *b),
            EvalError::SplitSumMismatch { have, want } => ErrorRepr::SplitSumMismatch {
                have: *have,
                want: *want,
            },
            EvalError::DivisionByZero => ErrorRepr::DivisionByZero,
            EvalError::Stuck(what) => ErrorRepr::Stuck(what),
            EvalError::FuelExhausted => ErrorRepr::FuelExhausted,
            EvalError::MachineFault(what) => ErrorRepr::MachineFault(what.clone()),
            EvalError::Translation(t) => ErrorRepr::Translation(TypeErrorRepr::of(t)),
        }
    }

    /// Rebuilds the real [`EvalError`] on the calling thread.
    pub fn to_error(&self) -> EvalError {
        match self {
            ErrorRepr::Omega => EvalError::Omega,
            ErrorRepr::UnboundVariable(x) => EvalError::UnboundVariable(x.clone()),
            ErrorRepr::UnknownFunction(x) => EvalError::UnknownFunction(x.clone()),
            ErrorRepr::GetNonSingleton(n) => EvalError::GetNonSingleton(*n),
            ErrorRepr::ZipLengthMismatch(a, b) => EvalError::ZipLengthMismatch(*a, *b),
            ErrorRepr::SplitSumMismatch { have, want } => EvalError::SplitSumMismatch {
                have: *have,
                want: *want,
            },
            ErrorRepr::DivisionByZero => EvalError::DivisionByZero,
            ErrorRepr::Stuck(what) => EvalError::Stuck(what),
            ErrorRepr::FuelExhausted => EvalError::FuelExhausted,
            ErrorRepr::MachineFault(what) => EvalError::MachineFault(what.clone()),
            ErrorRepr::Translation(t) => EvalError::Translation(t.to_error()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_round_trip_is_faithful() {
        let errs = [
            EvalError::Omega,
            EvalError::Translation(TypeError::UnboundVariable("y".into())),
            EvalError::Translation(TypeError::Mismatch {
                context: "app",
                expected: Type::seq(Type::Nat),
                found: Type::Unit,
            }),
            EvalError::MachineFault("bad route".into()),
        ];
        for e in errs {
            assert_eq!(ErrorRepr::of(&e).to_error(), e);
        }
    }

    #[test]
    fn round_trips_every_constructor() {
        let t = Type::prod(
            Type::seq(Type::sum(Type::Unit, Type::Nat)),
            Type::seq(Type::seq(Type::Nat)),
        );
        assert_eq!(TypeRepr::of(&t).to_type(), t);
    }

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn is_send_and_sync() {
        assert_send_sync::<TypeRepr>();
    }
}
