//! Shared workload builders for benchmarks and experiments.
//!
//! Every criterion bench and batch experiment constructs its programs
//! here, so "the sum workload" means the same AST in `benches/*.rs`,
//! `exp_t71`, `exp_opt`, `exp_batch`, and `bench_report` — apples to
//! apples across the whole perf surface.
//!
//! **Machine-reuse policy for benchmarks**: construct machines *once per
//! benchmark* and reuse them across iterations (warm register buffers) —
//! that is the serving runtime's steady state, which is what the benches
//! model.  A bench that wants cold-start numbers must say so in its name.

use nsc_core::ast as a;
use nsc_core::stdlib;
use nsc_core::Func;

/// A raw-BVRAM kernel: `y ← 3x²-ish` through a few registers (the
/// backend-crossover workload of `benches/wallclock.rs`).
pub fn saxpy_like() -> bvram::Program {
    use bvram::{Builder, Instr::*, Op};
    let mut b = Builder::new(2, 1);
    b.push(Arith {
        dst: 2,
        op: Op::Mul,
        a: 0,
        b: 0,
    })
    .push(Arith {
        dst: 3,
        op: Op::Add,
        a: 2,
        b: 1,
    })
    .push(Arith {
        dst: 2,
        op: Op::Mul,
        a: 3,
        b: 0,
    })
    .push(Arith {
        dst: 0,
        op: Op::Add,
        a: 2,
        b: 3,
    })
    .push(Halt);
    b.build().expect("static kernel")
}

/// `map(λx. x·x + 1) : [N] → [N]`.
pub fn map_square_plus_one() -> Func {
    a::map(a::lam(
        "x",
        a::add(a::mul(a::var("x"), a::var("x")), a::nat(1)),
    ))
}

/// Tree sum via the stdlib `while` loop: `λx. sum(x) : [N] → N`.
pub fn sum_while() -> Func {
    a::lam("x", stdlib::numeric::sum_seq(a::var("x")))
}

/// `λx. prefix_sum(x) : [N] → [N]`.
pub fn prefix_sum() -> Func {
    a::lam("x", stdlib::numeric::prefix_sum(a::var("x")))
}

/// The Map Lemma's hard case: a data-dependent `while` under `map`.
pub fn halve_all() -> Func {
    a::map(a::while_(
        a::lam("x", a::lt(a::nat(0), a::var("x"))),
        a::lam("x", a::rshift(a::var("x"), a::nat(1))),
    ))
}

/// A three-stage `map` chain (`(+1) ∘ (x·x) ∘ (+2)` elementwise) the
/// source-level fusion rewrite collapses to one stage — the
/// `exp_fusion` differential workload.  Every stage materializes an
/// intermediate sequence unfused, so the Map-Lemma encoding is paid
/// three times instead of once.
pub fn chained_maps() -> Func {
    let add = |k: u64| a::lam("x", a::add(a::var("x"), a::nat(k)));
    let sq = a::lam("x", a::mul(a::var("x"), a::var("x")));
    a::lam(
        "v",
        a::app(
            a::map(add(1)),
            a::app(a::map(sq), a::app(a::map(add(2)), a::var("v"))),
        ),
    )
}

/// Like [`chained_maps`], but the middle stage divides by the element:
/// `Ω` exactly when the input contains a zero — the fault-classification
/// side of the fusion differential.
pub fn chained_maps_faulting() -> Func {
    let add = |k: u64| a::lam("x", a::add(a::var("x"), a::nat(k)));
    let inv = a::lam("x", a::div(a::nat(100), a::var("x")));
    a::lam(
        "v",
        a::app(
            a::map(add(1)),
            a::app(a::map(inv), a::app(a::map(add(0)), a::var("v"))),
        ),
    )
}

/// The shared `EXP-T71`/`EXP-OPT`/`EXP-BATCH` suite over `[N]`.
pub fn suite() -> Vec<(&'static str, Func)> {
    vec![
        ("map(x*x+1)", map_square_plus_one()),
        ("sum (while)", sum_while()),
        ("prefix-sum", prefix_sum()),
        ("map(while halve)", halve_all()),
    ]
}

/// The optimizer-ablation pair (`benches/optimizer.rs`).
pub fn optimizer_pair() -> Vec<(&'static str, Func)> {
    vec![("map_sq", map_square_plus_one()), ("sum", sum_while())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_core::value::Value;
    use nsc_core::Type;

    #[test]
    fn every_suite_workload_compiles_and_runs() {
        for (name, f) in suite() {
            let c = nsc_compile::compile_nsc(&f, &Type::seq(Type::Nat)).expect(name);
            let arg = Value::nat_seq(0..8);
            let (got, _) = nsc_compile::run_compiled(&c, &arg).expect(name);
            let (want, _) = nsc_core::eval::apply_func(&f, arg).expect(name);
            assert_eq!(got, want, "{name}");
        }
    }

    #[test]
    fn saxpy_kernel_runs() {
        let p = saxpy_like();
        let out = bvram::run_program(&p, &[vec![1, 2, 3], vec![4, 5, 6]]).unwrap();
        assert_eq!(out.outputs[0].len(), 3);
    }
}
