//! The batch runtime's core contract, property-tested: `run_batch` —
//! in **both** pack and lanes modes, on **both** backends — is
//! bit-identical to a loop of single runs, in per-request *outputs* and
//! per-request *fault/divergence classification*.
//!
//! Coverage:
//!
//! * every runnable stdlib function (projections, broadcast, selections,
//!   filter, indexing, list accessors, numeric reductions, routing),
//!   driven with word-stream randomized inputs that mix valid shapes
//!   with `Ω`-triggering ones (empty sequences, out-of-range indices,
//!   inconsistent routing counts);
//! * random straight-line BVRAM programs from `bvram::fuzz` through the
//!   multi-lane entry points (pack is source-level — the Map Lemma — so
//!   raw programs batch via lanes; see `nsc_runtime::batch` docs);
//! * batches whose packed register lengths straddle the rayon `GRAIN`,
//!   so the `ParMachine`'s parallel and sequential code paths both serve
//!   batched traffic.
//!
//! The suite (18 compiled functions, each with its `map(f)` pack kernel,
//! served on both backends from one shared entry) is compiled once per
//! test thread through a `CompiledCache` and reused across proptest
//! cases — which is also the runtime's intended usage pattern.  The
//! compiler recurses with program depth, so the stdlib sweep runs on a
//! dedicated big-stack worker thread exactly like the `nsc` CLI driver.

use bvram::par::GRAIN;
use nsc_compile::Backend;
use nsc_core::ast as a;
use nsc_core::stdlib;
use nsc_core::types::Type;
use nsc_core::value::Value;
use nsc_runtime::{BatchMode, BatchRunner, CompiledCache};
use proptest::prelude::*;
use std::cell::OnceCell;
use std::sync::Arc;

/// Runs `f` on a thread with enough stack for the deepest stdlib
/// compilations (`map(combine_flags)` and friends), mirroring
/// `src/bin/nsc.rs`.
fn on_big_stack(f: fn()) {
    std::thread::Builder::new()
        .name("batch-equiv-worker".into())
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn worker")
        .join()
        .expect("worker panicked");
}

// --------------------------------------------------------------------------
// Word-stream randomization (the `tests/properties.rs` idiom): proptest
// supplies a word vector, a deterministic decoder turns it into inputs.
// --------------------------------------------------------------------------

struct Words<'a> {
    ws: &'a [u64],
    i: usize,
}

impl Words<'_> {
    fn new(ws: &[u64]) -> Words<'_> {
        Words { ws, i: 0 }
    }

    fn next(&mut self) -> u64 {
        let w = self.ws[self.i % self.ws.len()];
        self.i += 1;
        w.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self.i as u64))
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn nat_vec(w: &mut Words, max_len: u64, max: u64) -> Vec<u64> {
    let n = w.pick(max_len + 1);
    (0..n).map(|_| w.pick(max)).collect()
}

fn nat_seq(w: &mut Words, max_len: u64, max: u64) -> Value {
    Value::nat_seq(nat_vec(w, max_len, max))
}

// --------------------------------------------------------------------------
// The stdlib suite: every runnable stdlib function with a domain and a
// generator mixing valid and fault-triggering inputs.
// --------------------------------------------------------------------------

type Gen = Box<dyn Fn(&mut Words) -> Value>;

struct Subject {
    name: &'static str,
    /// One runner per backend (seq, par), sharing the cache entry's key
    /// modulo backend.
    runners: Vec<BatchRunner>,
    gen: Gen,
}

fn subject(
    cache: &CompiledCache,
    name: &'static str,
    f: nsc_core::Func,
    dom: Type,
    gen: Gen,
) -> Subject {
    // Compile once and serve the same shared entry on both backends (the
    // program text is backend-independent; keying per backend is a
    // serving-accounting choice the test does not need to pay twice for).
    let entry = cache
        .get_or_compile(&f, &dom, nsc_compile::OptLevel::O1, Backend::Seq)
        .unwrap_or_else(|e| panic!("compiling {name}: {e}"));
    let runners = vec![
        BatchRunner::new(Arc::clone(&entry), Backend::Seq),
        BatchRunner::new(entry, Backend::Par),
    ];
    Subject { name, runners, gen }
}

fn pair_seq(w: &mut Words) -> Value {
    let n = w.pick(7);
    Value::seq(
        (0..n)
            .map(|_| Value::pair(Value::nat(w.pick(50)), Value::nat(w.pick(50))))
            .collect(),
    )
}

fn sum_elem_seq(w: &mut Words) -> Value {
    let n = w.pick(7);
    Value::seq(
        (0..n)
            .map(|_| {
                if w.pick(2) == 0 {
                    Value::inl(Value::nat(w.pick(50)))
                } else {
                    Value::inr(Value::nat(w.pick(50)))
                }
            })
            .collect(),
    )
}

/// Ascending, mostly-valid index sequence into a length-`n` sequence
/// (deliberately out of range once in a while).
fn indices(w: &mut Words, n: u64) -> Vec<u64> {
    let k = w.pick(n + 2);
    let mut out: Vec<u64> = (0..k).map(|_| w.pick(n.max(1) + 1)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn suite(cache: &CompiledCache) -> Vec<Subject> {
    let nn = Type::prod(Type::Nat, Type::Nat);
    let seq_n = Type::seq(Type::Nat);
    let gt0 = a::lam("p0", a::lt(a::nat(0), a::var("p0")));
    vec![
        subject(
            cache,
            "pi1",
            stdlib::pi1(),
            Type::seq(nn.clone()),
            Box::new(pair_seq),
        ),
        subject(
            cache,
            "pi2",
            stdlib::pi2(),
            Type::seq(nn.clone()),
            Box::new(pair_seq),
        ),
        subject(
            cache,
            "broadcast",
            stdlib::broadcast(),
            Type::prod(Type::Nat, seq_n.clone()),
            Box::new(|w| Value::pair(Value::nat(w.pick(90)), nat_seq(w, 6, 50))),
        ),
        subject(
            cache,
            "sigma1",
            stdlib::sigma1(&Type::Nat),
            Type::seq(Type::sum(Type::Nat, Type::Nat)),
            Box::new(sum_elem_seq),
        ),
        subject(
            cache,
            "sigma2",
            stdlib::sigma2(&Type::Nat),
            Type::seq(Type::sum(Type::Nat, Type::Nat)),
            Box::new(sum_elem_seq),
        ),
        subject(
            cache,
            "filter(>0)",
            stdlib::filter(gt0, &Type::Nat),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 8, 5)),
        ),
        subject(
            cache,
            "index",
            a::lam(
                "p",
                stdlib::index(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
            Box::new(|w| {
                let c = nat_vec(w, 6, 90);
                let i = indices(w, c.len() as u64);
                Value::pair(Value::nat_seq(c), Value::nat_seq(i))
            }),
        ),
        subject(
            cache,
            "index_split",
            a::lam(
                "p",
                stdlib::index_split(a::fst(a::var("p")), a::snd(a::var("p"))),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
            Box::new(|w| {
                let c = nat_vec(w, 6, 90);
                let i = indices(w, c.len() as u64);
                Value::pair(Value::nat_seq(c), Value::nat_seq(i))
            }),
        ),
        subject(
            cache,
            "nth",
            a::lam(
                "p",
                stdlib::nth(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
            Box::new(|w| {
                let xs = nat_vec(w, 6, 90);
                // In range mostly; one past the end sometimes (Ω).
                let i = w.pick(xs.len() as u64 + 2);
                Value::pair(Value::nat_seq(xs), Value::nat(i))
            }),
        ),
        subject(
            cache,
            "take",
            a::lam(
                "p",
                stdlib::take(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
            Box::new(|w| {
                let xs = nat_vec(w, 6, 90);
                let m = w.pick(xs.len() as u64 + 2);
                Value::pair(Value::nat_seq(xs), Value::nat(m))
            }),
        ),
        subject(
            cache,
            "drop",
            a::lam(
                "p",
                stdlib::drop(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
            Box::new(|w| {
                let xs = nat_vec(w, 6, 90);
                let m = w.pick(xs.len() as u64 + 2);
                Value::pair(Value::nat_seq(xs), Value::nat(m))
            }),
        ),
        subject(
            cache,
            "first",
            a::lam("x", stdlib::first(a::var("x"), &Type::Nat)),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 90)), // empty => Ω
        ),
        subject(
            cache,
            "last",
            a::lam("x", stdlib::last(a::var("x"), &Type::Nat)),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 90)),
        ),
        subject(
            cache,
            "tail",
            a::lam("x", stdlib::tail(a::var("x"), &Type::Nat)),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 90)),
        ),
        subject(
            cache,
            "remove_last",
            a::lam("x", stdlib::remove_last(a::var("x"), &Type::Nat)),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 90)),
        ),
        subject(
            cache,
            "isqrt_pow2",
            a::lam("x", stdlib::isqrt_pow2(a::var("x"))),
            Type::Nat,
            Box::new(|w| Value::nat(w.pick(1 << 12))),
        ),
        // The reductions are `while` loops whose fused pack kernels do
        // heavy segmented staging — keep their inputs tiny so the sweep
        // exercises semantics, not the debug-build interpreter's patience.
        subject(
            cache,
            "sum_seq",
            a::lam("x", stdlib::numeric::sum_seq(a::var("x"))),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 16)),
        ),
        subject(
            cache,
            "maximum",
            a::lam("x", stdlib::maximum(a::var("x"))),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 16)),
        ),
        subject(
            cache,
            "prefix_sum",
            a::lam("x", stdlib::prefix_sum(a::var("x"))),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 16)),
        ),
        subject(
            cache,
            "bm_route",
            a::lam(
                "p",
                stdlib::bm_route(
                    a::fst(a::fst(a::var("p"))),
                    a::snd(a::fst(a::var("p"))),
                    a::snd(a::var("p")),
                ),
            ),
            Type::prod(Type::prod(seq_n.clone(), seq_n.clone()), seq_n.clone()),
            Box::new(|w| {
                let x = nat_vec(w, 4, 90);
                let d: Vec<u64> = x.iter().map(|_| w.pick(3)).collect();
                let mut total: u64 = d.iter().sum();
                if w.pick(5) == 0 {
                    total += 1; // break Σd = |u| sometimes (error path)
                }
                let u: Vec<u64> = (0..total).collect();
                Value::pair(
                    Value::pair(Value::nat_seq(u), Value::nat_seq(d)),
                    Value::nat_seq(x),
                )
            }),
        ),
        subject(
            cache,
            "m_route",
            a::lam(
                "p",
                stdlib::m_route(a::fst(a::var("p")), a::snd(a::var("p"))),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
            Box::new(|w| {
                let x = nat_vec(w, 3, 16);
                let d: Vec<u64> = x.iter().map(|_| w.pick(3)).collect();
                Value::pair(Value::nat_seq(d), Value::nat_seq(x))
            }),
        ),
        subject(
            cache,
            "combine_flags",
            a::lam(
                "p",
                stdlib::combine_flags(
                    a::fst(a::var("p")),
                    a::fst(a::snd(a::var("p"))),
                    a::snd(a::snd(a::var("p"))),
                    &Type::Nat,
                ),
            ),
            Type::prod(
                Type::seq(Type::bool_()),
                Type::prod(seq_n.clone(), seq_n.clone()),
            ),
            Box::new(|w| {
                let flags: Vec<bool> = (0..w.pick(5)).map(|_| w.pick(2) == 1).collect();
                let mut t = flags.iter().filter(|b| **b).count() as u64;
                let mut f = flags.len() as u64 - t;
                if w.pick(5) == 0 {
                    t += 1; // wrong payload length sometimes (error path)
                }
                if w.pick(5) == 0 {
                    f += 1;
                }
                Value::pair(
                    Value::seq(flags.iter().map(|b| Value::bool_(*b)).collect()),
                    Value::pair(
                        Value::nat_seq((0..t).map(|i| i * 3)),
                        Value::nat_seq((0..f).map(|i| 100 + i)),
                    ),
                )
            }),
        ),
    ]
}

thread_local! {
    static SUITE: OnceCell<(CompiledCache, Vec<Subject>)> = const { OnceCell::new() };
}

fn with_suite<R>(f: impl FnOnce(&[Subject]) -> R) -> R {
    SUITE.with(|cell| {
        let (_, subjects) = cell.get_or_init(|| {
            let cache = CompiledCache::new();
            let subjects = suite(&cache);
            (cache, subjects)
        });
        f(subjects)
    })
}

/// The per-subject equivalence check: for one batch of inputs, both
/// modes on both backends must reproduce the single-run loop exactly.
fn check_batch(s: &Subject, inputs: &[Value]) {
    for runner in &s.runners {
        let backend = runner.backend().name();
        let singles: Vec<_> = inputs
            .iter()
            .map(|v| runner.run_single(v).map(|p| p.0))
            .collect();
        for mode in [BatchMode::Pack, BatchMode::Lanes] {
            let out = runner.run_batch_mode(inputs, mode);
            assert_eq!(
                out.results, singles,
                "{}/{backend}/{:?}: batch diverges from single runs",
                s.name, mode
            );
        }
        // `run_batch` dispatches to choose_mode's pick — both candidate
        // disciplines are verified above, so checking the chooser's
        // totality is enough (no third execution).
        let _auto: BatchMode = runner.choose_mode(inputs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Every stdlib function, random batches (size 0..7) of random
    /// valid-and-faulting inputs, both modes, both backends.  No `#[test]`
    /// attribute: the generated fn is driven by the big-stack wrapper
    /// below (the suite's compilations out-recurse the default stack).
    fn stdlib_batches_inner(
        words in proptest::collection::vec(0u64..u64::MAX, 8..40),
    ) {
        with_suite(|subjects| {
            let mut w = Words::new(&words);
            for s in subjects {
                let b = w.pick(7) as usize;
                let inputs: Vec<Value> = (0..b).map(|_| (s.gen)(&mut w)).collect();
                check_batch(s, &inputs);
            }
        });
    }
}

#[test]
fn stdlib_batches_match_single_run_loops() {
    on_big_stack(stdlib_batches_inner);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Random straight-line BVRAM programs: the multi-lane entry points
    /// (the raw-program face of lanes mode) against a loop of single
    /// runs — outputs, stats, and per-lane faults, with lane sizes
    /// straddling the rayon GRAIN.
    #[test]
    fn fuzz_program_lanes_match_single_run_loops(
        words in proptest::collection::vec(0u64..u64::MAX, 1..30),
        lens in proptest::collection::vec(0usize..12, 1..10),
        straddle in 0u64..2,
    ) {
        use bvram::fuzz::{decode_program, FUZZ_REGS, FUZZ_INPUTS};
        let mut w = Words::new(&words);
        let lanes: Vec<Vec<Vec<u64>>> = lens
            .iter()
            .enumerate()
            .map(|(li, len)| {
                let mut n0 = *len;
                if straddle == 1 && li == 0 {
                    n0 = GRAIN + (w.pick(64) as usize);
                }
                let mut lane = vec![(0..n0 as u64).map(|_| w.pick(50)).collect::<Vec<u64>>()];
                for _ in 1..FUZZ_INPUTS {
                    lane.push((0..w.pick(8)).map(|_| w.pick(50)).collect());
                }
                lane
            })
            .collect();
        // One program, same input arity for every lane (the serving shape).
        let shape = [lanes[0][0].len(), lanes[0][1].len(), lanes[0][2].len()];
        let prog = decode_program(&words, shape, FUZZ_REGS);
        let singles: Vec<_> = lanes
            .iter()
            .map(|l| bvram::run_program(&prog, l))
            .collect();
        let seq = bvram::run_lanes_seq(&prog, lanes.clone());
        let ray = bvram::run_lanes_rayon(&prog, lanes.clone(), false);
        let ray_inner = bvram::run_lanes_rayon(&prog, lanes, true);
        for (i, want) in singles.iter().enumerate() {
            for (which, got) in [("seq", &seq[i]), ("rayon", &ray[i]), ("rayon+par", &ray_inner[i])] {
                match (want, got) {
                    (Ok(a), Ok(b)) => {
                        prop_assert_eq!(&a.outputs, &b.outputs, "lane {} outputs ({})", i, which);
                        prop_assert_eq!(a.stats, b.stats, "lane {} stats ({})", i, which);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b, "lane {} fault ({})", i, which),
                    (a, b) => prop_assert!(false, "lane {} ({}): {:?} vs {:?}", i, which, a, b),
                }
            }
        }
    }
}

/// Packed register lengths straddling GRAIN: B·n crosses the rayon
/// grain, so the Par backend's parallel instruction paths execute under
/// pack while each individual request stays below the grain.
#[test]
fn packed_batches_straddle_grain() {
    let cache = CompiledCache::new();
    let f = nsc_runtime::workloads::map_square_plus_one();
    let dom = Type::seq(Type::Nat);
    let n = 257u64; // per-request length
    let b = GRAIN / n as usize + 2; // B*n > GRAIN
    assert!(n < GRAIN as u64 && n * b as u64 > GRAIN as u64);
    let inputs: Vec<Value> = (0..b as u64)
        .map(|i| Value::nat_seq((0..n).map(move |j| (i * 31 + j) % 97)))
        .collect();
    for backend in [Backend::Seq, Backend::Par] {
        let runner =
            BatchRunner::from_cache(&cache, &f, &dom, nsc_compile::OptLevel::O1, backend).unwrap();
        let singles: Vec<_> = inputs
            .iter()
            .map(|v| runner.run_single(v).map(|p| p.0))
            .collect();
        for mode in [BatchMode::Pack, BatchMode::Lanes] {
            let out = runner.run_batch_mode(&inputs, mode);
            assert_eq!(out.results, singles, "{backend:?}/{mode:?}");
        }
    }
}
