//! `CompiledCache` under contention: N threads requesting the same key
//! must trigger exactly one compilation (counted through the injected
//! compile hook *and* the cache's own counter) and must all observe the
//! very same shared `CachedProgram`.

use nsc_compile::{Backend, OptLevel};
use nsc_core::ast as a;
use nsc_core::types::Type;
use nsc_core::value::Value;
use nsc_runtime::{BatchRunner, CompiledCache};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

/// The contended function.  Fixed variable names (no gensym): the cache
/// key is the printed source, and every thread must produce the same one.
fn handler() -> nsc_core::Func {
    a::map(a::lam(
        "x",
        a::add(a::mul(a::var("x"), a::var("x")), a::nat(1)),
    ))
}

#[test]
fn n_threads_compile_exactly_once_and_share_the_program() {
    const THREADS: usize = 16;
    let cache = Arc::new(CompiledCache::new());
    let hook_count = Arc::new(AtomicUsize::new(0));
    {
        let hook_count = Arc::clone(&hook_count);
        cache.set_compile_hook(Box::new(move |key| {
            hook_count.fetch_add(1, Ordering::SeqCst);
            assert_eq!(key.opt, OptLevel::O1);
            assert_eq!(key.backend, Backend::Seq);
        }));
    }
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Each thread builds its own AST (Func is thread-local by
                // construction) — same source, same key.
                let f = handler();
                let dom = Type::seq(Type::Nat);
                barrier.wait(); // maximal contention on the cold key
                let entry = cache
                    .get_or_compile(&f, &dom, OptLevel::O1, Backend::Seq)
                    .expect("compiles");
                // Prove the entry is actually runnable from this thread.
                let runner = BatchRunner::new(Arc::clone(&entry), Backend::Seq);
                let arg = Value::nat_seq(0..4 + t as u64);
                let (got, _) = runner.run_single(&arg).unwrap();
                let (want, _) = nsc_core::eval::apply_func(&handler(), arg).unwrap();
                assert_eq!(got, want);
                entry
            })
        })
        .collect();
    let entries: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    assert_eq!(
        hook_count.load(Ordering::SeqCst),
        1,
        "{THREADS} threads must trigger exactly one compilation"
    );
    assert_eq!(cache.compiles(), 1);
    assert_eq!(cache.len(), 1);
    for e in &entries[1..] {
        assert!(
            Arc::ptr_eq(&entries[0], e),
            "every thread must observe the same shared Program"
        );
    }
}

#[test]
fn distinct_keys_compile_independently_under_contention() {
    const THREADS: usize = 12;
    let cache = Arc::new(CompiledCache::new());
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                // Three distinct keys spread over the threads.
                let (f, opt, backend) = match t % 3 {
                    0 => (handler(), OptLevel::O1, Backend::Seq),
                    1 => (handler(), OptLevel::O0, Backend::Seq),
                    _ => (handler(), OptLevel::O1, Backend::Par),
                };
                barrier.wait();
                cache
                    .get_or_compile(&f, &Type::seq(Type::Nat), opt, backend)
                    .expect("compiles")
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cache.compiles(), 3, "one compilation per distinct key");
    assert_eq!(cache.len(), 3);
}
