//! Front ends: newline-delimited JSON over TCP and over a pipe.
//!
//! Both fronts share one request path ([`handle_line`]) and one
//! guarantee: **responses are written in request order per connection**.
//! A connection may hit several shards (different functions/backends)
//! whose batches complete out of order, so each connection runs a writer
//! with a reorder buffer keyed by the connection-local request sequence
//! number — shard-level FIFO plus connection-level reordering gives
//! pipelined clients a deterministic stream.
//!
//! Shutdown is graceful everywhere: the pipe front drains the server at
//! EOF, the TCP front drains after a `{"cmd": "shutdown"}` request stops
//! the accept loop and every open connection finishes — queued requests
//! are always answered before the process exits.

use crate::protocol::{self, Request};
use crate::server::Server;
use crate::Reply;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

/// What a handled line asked the front end to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOutcome {
    /// Keep reading.
    Continue,
    /// The client requested a server shutdown.
    Shutdown,
}

/// Handles one request line: the response (eventually) arrives on `out`
/// tagged with `seq`, the connection-local request number used by the
/// ordered writer.  Synchronous rejections (bad JSON, unknown function,
/// backpressure) are answered immediately through the same channel.
pub fn handle_line(
    server: &Arc<Server>,
    line: &str,
    seq: u64,
    out: &Sender<(u64, String)>,
) -> LineOutcome {
    match protocol::parse_request(line) {
        Err(e) => {
            let _ = out.send((seq, protocol::render_error(None, &e)));
            LineOutcome::Continue
        }
        Ok(Request::Metrics) => {
            let _ = out.send((seq, protocol::render_snapshots(&server.snapshots())));
            LineOutcome::Continue
        }
        Ok(Request::Shutdown) => {
            let _ = out.send((seq, protocol::render_draining()));
            LineOutcome::Shutdown
        }
        Ok(Request::Call {
            fn_name,
            input,
            backend,
            id,
        }) => {
            let reply_out = out.clone();
            let reply_id = id.clone();
            let submitted = server.submit(
                &fn_name,
                backend,
                input,
                Box::new(move |r: Reply| {
                    let line = match &r.result {
                        Ok(v) => protocol::render_output(reply_id.as_ref(), v),
                        Err(e) => protocol::render_error(reply_id.as_ref(), e),
                    };
                    let _ = reply_out.send((seq, line));
                }),
            );
            if let Err(e) = submitted {
                let _ = out.send((seq, protocol::render_error(id.as_ref(), &e)));
            }
            LineOutcome::Continue
        }
    }
}

/// Writes `(seq, line)` pairs in strictly increasing `seq` order,
/// buffering lines that arrive early.  Runs until every sender is gone,
/// then flushes; returns the writer on exit.
fn ordered_writer<W: Write>(rx: Receiver<(u64, String)>, mut w: W) -> std::io::Result<W> {
    let mut next: u64 = 0;
    let mut pending: HashMap<u64, String> = HashMap::new();
    while let Ok((seq, line)) = rx.recv() {
        pending.insert(seq, line);
        while let Some(line) = pending.remove(&next) {
            w.write_all(line.as_bytes())?;
            w.write_all(b"\n")?;
            next += 1;
        }
        if pending.is_empty() {
            w.flush()?;
        }
    }
    w.flush()?;
    Ok(w)
}

/// The pipe front end: reads request lines from `reader`, writes ordered
/// response lines to `writer`, and on EOF (or a read error) drains the
/// server — every *admitted* request is answered before this returns.
/// Blank lines are ignored.  The error, if any, is reported after the
/// drain, never instead of it.
pub fn serve_lines<R: BufRead, W: Write + Send + 'static>(
    server: &Arc<Server>,
    reader: R,
    writer: W,
) -> std::io::Result<()> {
    let (tx, rx) = channel::<(u64, String)>();
    let writer = std::thread::Builder::new()
        .name("nsc-serve/writer".into())
        .spawn(move || ordered_writer(rx, writer))
        .expect("spawn writer thread");
    let mut seq: u64 = 0;
    let mut read_err = None;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            // Stop reading, but still drain and flush what was admitted.
            Err(e) => {
                read_err = Some(e);
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let outcome = handle_line(server, &line, seq, &tx);
        seq += 1;
        if outcome == LineOutcome::Shutdown {
            break;
        }
    }
    server.drain();
    // Shards are joined, so every reply closure has run (or been
    // dropped); dropping our sender lets the writer finish and exit.
    drop(tx);
    let write_result = writer.join().expect("writer thread panicked").map(|_| ());
    match read_err {
        Some(e) => Err(e),
        None => write_result,
    }
}

/// The TCP front end: accepts connections on `listener` and serves each
/// on its own thread until some client sends `{"cmd": "shutdown"}`; then
/// stops accepting, waits for open connections to finish, drains the
/// server, and returns.
///
/// The listener is polled (non-blocking accept + sleep) so the shutdown
/// flag is honored promptly; connection handling itself is plain
/// blocking I/O.
pub fn serve_tcp(server: &Arc<Server>, listener: TcpListener) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let mut errors: u32 = 0;
    let mut fatal: Option<std::io::Error> = None;
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                errors = 0;
                let server = Arc::clone(server);
                let shutdown = Arc::clone(&shutdown);
                let active = Arc::clone(&active);
                active.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name("nsc-serve/conn".into())
                    .spawn(move || {
                        let _ = serve_connection(&server, stream, &shutdown);
                        active.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn connection thread");
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                errors = 0;
                std::thread::sleep(Duration::from_millis(5));
            }
            // Transient accept failures (ECONNABORTED, EMFILE under
            // load, …) must not kill the server: back off and retry.
            // Only a *persistent* failure (~1s of nothing but errors)
            // stops the accept loop — and even then the server drains,
            // so already-admitted requests are still answered.
            Err(e) => {
                errors += 1;
                if errors >= 200 {
                    fatal = Some(e);
                    shutdown.store(true, Ordering::SeqCst);
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Let in-flight connections finish before draining the shards, so
    // their queued requests are answered through open sockets.
    while active.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    server.drain();
    match fatal {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Serves one TCP connection; returns when the client closes, errors,
/// requests shutdown (which also flips the accept loop's flag), or
/// another connection's shutdown request flips the flag — reads run
/// under a short timeout so an *idle* connection notices the flag
/// promptly instead of pinning the accept loop's drain forever.
fn serve_connection(
    server: &Arc<Server>,
    mut stream: TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    use std::io::Read;

    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let write_half = stream.try_clone()?;
    let (tx, rx) = channel::<(u64, String)>();
    let writer = std::thread::Builder::new()
        .name("nsc-serve/conn-writer".into())
        .spawn(move || ordered_writer(rx, write_half))
        .expect("spawn connection writer");
    // Lines are split by hand off timed reads: `BufRead::read_line`'s
    // buffer contents are unspecified after an error, and a read timeout
    // is a routine event here, not an error.
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut seq: u64 = 0;
    'conn: while !shutdown.load(Ordering::SeqCst) {
        let n = match stream.read(&mut chunk) {
            Ok(0) => {
                // EOF: a final request without a trailing newline is
                // still a request — answer it like the pipe front does
                // (including honoring a trailing shutdown command).
                if !buf.is_empty() {
                    let line = String::from_utf8_lossy(&buf).into_owned();
                    buf.clear();
                    if !line.trim().is_empty()
                        && handle_line(server, &line, seq, &tx) == LineOutcome::Shutdown
                    {
                        shutdown.store(true, Ordering::SeqCst);
                    }
                }
                break;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // idle: re-check the shutdown flag
            }
            Err(_) => break, // client went away mid-line
        };
        buf.extend_from_slice(&chunk[..n]);
        while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
            let raw: Vec<u8> = buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&raw[..raw.len() - 1]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            let outcome = handle_line(server, &line, seq, &tx);
            seq += 1;
            if outcome == LineOutcome::Shutdown {
                shutdown.store(true, Ordering::SeqCst);
                break 'conn;
            }
        }
    }
    drop(tx);
    // Wait for every in-flight reply on this connection to be written —
    // this is what makes shutdown graceful per connection.  The shards
    // still hold reply senders for queued requests; the writer exits
    // when the last one is used or dropped.
    let _ = writer.join().expect("connection writer panicked");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServeConfig;
    use nsc_core::ast as a;
    use nsc_core::types::Type;

    fn test_server() -> Arc<Server> {
        let mut s = Server::new(ServeConfig {
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        });
        let sq = a::map(a::lam(
            "x",
            a::add(a::mul(a::var("x"), a::var("x")), a::nat(1)),
        ));
        let double = a::map(a::lam("x", a::add(a::var("x"), a::var("x"))));
        s.register("sq1", &sq, &Type::seq(Type::Nat));
        s.register("double", &double, &Type::seq(Type::Nat));
        Arc::new(s)
    }

    #[test]
    fn serve_lines_answers_in_request_order_across_shards() {
        let server = test_server();
        let input = "\
{\"fn\": \"sq1\", \"input\": \"[1, 2]\", \"id\": 0}\n\
{\"fn\": \"double\", \"input\": \"[1, 2]\", \"id\": 1}\n\
\n\
{\"fn\": \"sq1\", \"input\": \"[3]\", \"id\": 2}\n\
{\"fn\": \"missing\", \"input\": \"[]\", \"id\": 3}\n\
not json at all\n";
        let out = shared_buffer();
        serve_lines(&server, input.as_bytes(), out.clone()).unwrap();
        let text = out.take();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "{text}");
        assert_eq!(lines[0], r#"{"id": 0, "output": "[2, 5]"}"#);
        assert_eq!(lines[1], r#"{"id": 1, "output": "[2, 4]"}"#);
        assert_eq!(lines[2], r#"{"id": 2, "output": "[10]"}"#);
        assert!(
            lines[3].contains("\"kind\": \"unknown-fn\""),
            "{}",
            lines[3]
        );
        assert!(
            lines[4].contains("\"kind\": \"bad-request\""),
            "{}",
            lines[4]
        );
    }

    #[test]
    fn serve_lines_metrics_and_shutdown() {
        let server = test_server();
        let input = "\
{\"fn\": \"sq1\", \"input\": \"[2]\"}\n\
{\"cmd\": \"metrics\"}\n\
{\"cmd\": \"shutdown\"}\n\
{\"fn\": \"sq1\", \"input\": \"[9]\"}\n";
        let out = shared_buffer();
        serve_lines(&server, input.as_bytes(), out.clone()).unwrap();
        let text = out.take();
        let lines: Vec<&str> = text.lines().collect();
        // The post-shutdown request line is never read.
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(lines[0], r#"{"output": "[5]"}"#);
        assert!(lines[1].contains("\"snapshots\": ["), "{}", lines[1]);
        assert_eq!(lines[2], r#"{"ok": "draining"}"#);
        // serve_lines drained the server.
        assert_eq!(
            server
                .submit("sq1", None, "[1]".into(), Box::new(|_| {}))
                .unwrap_err()
                .kind(),
            "shutdown"
        );
    }

    #[test]
    fn ordered_writer_reorders_early_arrivals() {
        let (tx, rx) = channel();
        for seq in [2u64, 0, 1] {
            tx.send((seq, format!("line{seq}"))).unwrap();
        }
        drop(tx);
        let out = ordered_writer(rx, Vec::new()).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "line0\nline1\nline2\n");
    }

    // A Write handle tests can keep after serve_lines takes ownership.
    #[derive(Clone)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

    fn shared_buffer() -> SharedBuf {
        SharedBuf(Arc::new(std::sync::Mutex::new(Vec::new())))
    }

    impl SharedBuf {
        fn take(&self) -> String {
            String::from_utf8(std::mem::take(&mut self.0.lock().unwrap())).unwrap()
        }
    }

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
}
