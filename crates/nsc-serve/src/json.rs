//! A minimal JSON reader/writer for the wire protocol and the bench
//! trend gate.
//!
//! The workspace is offline (no serde), and the two JSON surfaces it
//! actually has — newline-delimited request/response objects and
//! `BENCH_batch.json` — need nothing beyond the standard scalar types,
//! arrays, and objects.  [`parse`] accepts exactly RFC 8259 documents
//! (any top-level value); [`Json::render`] emits them back with the same
//! string escaping the bench writer uses, so `parse(render(j)) == j` up
//! to float formatting.
//!
//! Numbers are kept as `f64`.  Every integer the protocol and the bench
//! schema carry (batch sizes, ids, nanosecond wall-clocks) is far below
//! `2^53`, so the round trip is exact where it matters; [`Json::as_u64`]
//! rejects non-integral values rather than truncating.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.  Keys are unique (later duplicates win) and iterate in
    /// sorted order; the protocol never depends on member order.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number payload as a non-negative integer; `None` if this is
    /// not a number or not exactly an integer in `u64` range.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if (0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes the value on one line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                // Integers print without a fractional part; everything the
                // protocol emits is integral or a ratio where `{}` (shortest
                // round-trip) is fine.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => out.push_str(&escape(s)),
            Json::Arr(v) => {
                out.push('[');
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    x.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&escape(k));
                    out.push_str(": ");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes `s` as a JSON string literal (quotes included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Where and why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.bytes.len() {
        return Err(p.err("trailing garbage after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &'static str) -> JsonError {
        JsonError { at: self.i, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8, msg: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err("unrecognized literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "expected `[`")?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "expected `{`")?;
        let mut out = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':', "expected `:` after object key")?;
            self.ws();
            let v = self.value()?;
            out.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected a string")?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.i += 4;
                            // Surrogate pairs are not needed by this
                            // protocol; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                c if c < 0x20 => return Err(self.err("raw control character in string")),
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.i - 1;
                    let mut end = self.i;
                    while end < self.bytes.len() && (self.bytes[end] & 0xc0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.i = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.i]).expect("digits are ASCII");
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_request_shape() {
        let j = parse(r#"{"fn": "main", "input": "[1, 2, 3]", "id": 7}"#).unwrap();
        assert_eq!(j.get("fn").and_then(Json::as_str), Some("main"));
        assert_eq!(j.get("input").and_then(Json::as_str), Some("[1, 2, 3]"));
        assert_eq!(j.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn round_trips_through_render() {
        let src = r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": [true, false]}, "s": "x\"y\\z\n"}"#;
        let j = parse(src).unwrap();
        assert_eq!(parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn escapes_and_unescapes() {
        let j = parse(r#""aA\t\n\"\\""#).unwrap();
        assert_eq!(j, Json::Str("aA\t\n\"\\".into()));
        assert_eq!(escape("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\u{1}\"",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
        // Raw control char inside a string.
        assert!(parse("\"a\u{0}b\"").is_err());
    }

    #[test]
    fn numbers_are_exact_where_the_protocol_needs_them() {
        let j = parse("1234567890123").unwrap();
        assert_eq!(j.as_u64(), Some(1_234_567_890_123));
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn duplicate_keys_last_wins_and_order_is_canonical() {
        let j = parse(r#"{"b": 1, "a": 2, "b": 3}"#).unwrap();
        assert_eq!(j.render(), r#"{"a": 2, "b": 3}"#);
    }
}
