//! # nsc-serve — an adaptive micro-batching request server
//!
//! PR 4's runtime made batches *cheap* (`nsc_runtime::BatchRunner`
//! amortizes the compiled program's `T'` across `B` requests); this crate
//! makes batches *form*.  Real traffic arrives one request at a time, so
//! the server sits between callers and the batch runner:
//!
//! * [`server::Server`] — the function registry and shard directory.
//!   Callers [`Server::submit`](server::Server::submit) one request
//!   (function name + NSC value literal text) and get the reply through a
//!   callback; requests are routed to a **shard** per
//!   `(function, backend)`.
//! * [`shard`] — each shard owns a *bounded* MPSC admission queue (a full
//!   queue rejects with [`ServeError::Overloaded`] instead of growing
//!   without bound) and a batcher thread that drains it under a **dual
//!   threshold** policy: flush when `max_batch` requests have gathered
//!   *or* `max_wait` has elapsed since the oldest queued request,
//!   whichever comes first.  Flushed batches run on
//!   [`BatchRunner::run_batch`](nsc_runtime::BatchRunner::run_batch),
//!   which picks pack vs lanes per batch and executes lanes on the rayon
//!   worker pool.
//! * [`metrics`] — per-shard counters (queue depth, batch-size histogram,
//!   p50/p99 latency, pack-vs-lanes-vs-fused counts) exposed as a
//!   [`metrics::Snapshot`].
//! * [`front`] — the newline-delimited-JSON front ends: a `std::net` TCP
//!   listener (`nsc serve --addr …`) and a pipe-driven reader
//!   (`nsc serve --stdin`), both with graceful drain on shutdown.
//! * [`json`] / [`protocol`] — the (dependency-free) wire format:
//!   `{"fn": …, "input": …}` → `{"output": …}` / `{"error": …, "kind": …}`.
//!
//! Batching stays **semantically invisible**: a request routed through
//! the server returns the same pretty-printed value — and the same
//! `Ω`-vs-machine-fault error classification — as a direct single run of
//! the compiled program (property-tested over the runnable stdlib in
//! `tests/serve_equiv.rs`, with FIFO reply order per shard locked down in
//! `tests/serve_props.rs`).
//!
//! ### Threading
//!
//! `Func`, `Type`, and `Value` are `Rc`-based and cannot cross threads,
//! so everything that crosses a thread boundary is *text*: functions are
//! registered as their pretty-printed source (faithful by the parser
//! round-trip property), inputs travel as value literals, outputs travel
//! pretty-printed.  Each batcher thread parses and compiles on its own
//! big stack and owns its `BatchRunner`; the compiled programs themselves
//! are shared through the `Send + Sync` [`nsc_runtime::CompiledCache`].
#![warn(missing_docs)]

pub mod front;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod shard;

pub use metrics::Snapshot;
pub use server::{ServeConfig, Server};
pub use shard::Reply;

use nsc_runtime::repr::ErrorRepr;
use std::fmt;

/// Why a request was not answered with an output.
///
/// [`ServeError::kind`] is the wire-level classification (`"kind"` in
/// error responses); the `Eval` variant preserves the runtime's exact
/// error so `Ω`-vs-machine-fault classification survives the trip
/// through the server bit-identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The shard's admission queue is full — backpressure, try later.
    Overloaded,
    /// The server is draining; no new requests are admitted.
    ShuttingDown,
    /// No function with that name is registered.
    UnknownFunction(String),
    /// The request line is not a well-formed protocol message.
    BadRequest(String),
    /// The `input` field does not parse as an NSC value literal.
    InvalidInput(String),
    /// The input value does not inhabit the function's domain type.
    Domain {
        /// The offending input, as submitted.
        value: String,
        /// The function's domain type.
        dom: String,
    },
    /// The function failed to compile (negatively cached; every request
    /// to this shard reports the same error).
    Compile(String),
    /// The compiled program's verdict for this request — `Ω` divergence,
    /// a machine fault, or another evaluation error, exactly as a single
    /// run would classify it.
    Eval(ErrorRepr),
}

impl ServeError {
    /// The wire-level error class (the `"kind"` field of error replies).
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::Overloaded => "overloaded",
            ServeError::ShuttingDown => "shutdown",
            ServeError::UnknownFunction(_) => "unknown-fn",
            ServeError::BadRequest(_) => "bad-request",
            ServeError::InvalidInput(_) => "parse",
            ServeError::Domain { .. } => "domain",
            ServeError::Compile(_) => "compile",
            ServeError::Eval(ErrorRepr::Omega) => "omega",
            ServeError::Eval(ErrorRepr::MachineFault(_)) => "fault",
            ServeError::Eval(_) => "eval",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "admission queue full"),
            ServeError::ShuttingDown => write!(f, "server is draining"),
            ServeError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::InvalidInput(msg) => write!(f, "unparseable input: {msg}"),
            ServeError::Domain { value, dom } => {
                write!(f, "input {value} does not inhabit the domain {dom}")
            }
            ServeError::Compile(msg) => write!(f, "compilation failed: {msg}"),
            ServeError::Eval(e) => write!(f, "{}", e.to_error()),
        }
    }
}

impl std::error::Error for ServeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_classify_omega_vs_fault() {
        assert_eq!(ServeError::Eval(ErrorRepr::Omega).kind(), "omega");
        assert_eq!(
            ServeError::Eval(ErrorRepr::MachineFault("bad route".into())).kind(),
            "fault"
        );
        assert_eq!(ServeError::Eval(ErrorRepr::DivisionByZero).kind(), "eval");
        assert_eq!(ServeError::Overloaded.kind(), "overloaded");
    }

    #[test]
    fn serve_error_is_send() {
        fn assert_send<T: Send + Sync>() {}
        assert_send::<ServeError>();
    }
}
