//! Per-shard serving metrics.
//!
//! Counters are recorded by the shard (admission side and batcher side)
//! and exposed as an immutable [`Snapshot`] — the struct CI's `exp_serve`
//! load generator asserts on ("did batches actually form?") and the
//! `{"cmd": "metrics"}` protocol request serializes.
//!
//! Distributions (batch sizes, per-request latency) are kept as
//! power-of-two [`Hist`]ograms: recording is O(1) and lock-cheap, and
//! quantiles come back as the *upper bound* of the bucket the quantile
//! falls in — at most 2× the true value, which is the right fidelity for
//! a serving dashboard and costs 64 words per histogram.

use crate::json::Json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A power-of-two-bucket histogram: bucket `i` counts values `v` with
/// `bucket_of(v) == i`, i.e. `v == 0` in bucket 0 and
/// `2^(i-1) <= v < 2^i` in bucket `i`.
#[derive(Debug, Clone)]
pub struct Hist {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(63)
}

impl Hist {
    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-quantile (`0 < q <= 1`), reported as the upper bound of
    /// the bucket the quantile falls in (exact for values ≤ 1, else at
    /// most 2× the true value); 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// `(bucket upper bound, count)` for every non-empty bucket.
    pub fn nonempty(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (upper_bound(i), *n))
            .collect()
    }
}

fn upper_bound(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        (1u64 << (bucket - 1)) * 2 - 1
    }
}

/// Shared, thread-safe metrics for one shard.
#[derive(Debug, Default)]
pub struct Metrics {
    depth: AtomicUsize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    submitted: u64,
    rejected: u64,
    completed: u64,
    errors: u64,
    batches: u64,
    batch_sizes: Hist,
    latency_ns: Hist,
    pack_batches: u64,
    lanes_batches: u64,
    fused_batches: u64,
    pack_slower: u64,
}

impl Metrics {
    /// Admission side: a request is *about* to be enqueued.  Called
    /// before the actual send — otherwise the batcher could answer the
    /// request (decrementing depth) before the admission increment lands,
    /// wrapping the gauge.  Pair with [`Metrics::on_reject`] or
    /// [`Metrics::on_retract`] if the send then fails.
    pub fn on_admit(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.inner.lock().unwrap().submitted += 1;
    }

    /// Admission side: the send after [`Metrics::on_admit`] bounced off
    /// the full queue — roll the admission back and count a rejection.
    pub fn on_reject(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
        let mut m = self.inner.lock().unwrap();
        m.submitted -= 1;
        m.rejected += 1;
    }

    /// Admission side: the send after [`Metrics::on_admit`] failed for a
    /// non-backpressure reason (shard shutting down) — roll back only.
    pub fn on_retract(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
        self.inner.lock().unwrap().submitted -= 1;
    }

    /// Batcher side: a batch of `size` requests is about to execute
    /// under `mode` (`fused` per [`nsc_runtime::BatchOutcome::fused`]);
    /// batches that never reach the runner (all requests malformed) pass
    /// no mode.  `pack_slower` marks a pack misprediction — the cost
    /// model chose pack, but the batch ran worse than its prediction
    /// (see [`Snapshot::pack_slower`]).
    pub fn on_batch(
        &self,
        size: usize,
        mode: Option<nsc_runtime::BatchMode>,
        fused: bool,
        pack_slower: bool,
    ) {
        let mut m = self.inner.lock().unwrap();
        m.batches += 1;
        m.batch_sizes.record(size as u64);
        match mode {
            Some(nsc_runtime::BatchMode::Pack) => m.pack_batches += 1,
            Some(nsc_runtime::BatchMode::Lanes) => m.lanes_batches += 1,
            None => {}
        }
        if fused {
            m.fused_batches += 1;
        }
        if pack_slower {
            m.pack_slower += 1;
        }
    }

    /// Batcher side: one request of the current batch was answered.
    pub fn on_reply(&self, latency_ns: u64, is_err: bool) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
        let mut m = self.inner.lock().unwrap();
        m.completed += 1;
        if is_err {
            m.errors += 1;
        }
        m.latency_ns.record(latency_ns);
    }

    /// A point-in-time copy of every counter.  `fused_stages` is the
    /// shard's compile-time property (how many `map ∘ map` stages source
    /// fusion collapsed in its pack kernel), passed through so the
    /// metrics reply reports compile-time and run-time batching facts
    /// together.
    pub fn snapshot(&self, function: &str, backend: &'static str, fused_stages: usize) -> Snapshot {
        let m = self.inner.lock().unwrap();
        Snapshot {
            function: function.to_string(),
            backend,
            fused_stages,
            queue_depth: self.depth.load(Ordering::Relaxed),
            submitted: m.submitted,
            rejected: m.rejected,
            completed: m.completed,
            errors: m.errors,
            batches: m.batches,
            mean_batch: m.batch_sizes.mean(),
            max_batch: m.batch_sizes.max() as usize,
            batch_hist: m.batch_sizes.nonempty(),
            pack_batches: m.pack_batches,
            lanes_batches: m.lanes_batches,
            fused_batches: m.fused_batches,
            pack_slower: m.pack_slower,
            p50_latency_ns: m.latency_ns.quantile(0.50),
            p99_latency_ns: m.latency_ns.quantile(0.99),
            mean_latency_ns: m.latency_ns.mean(),
        }
    }
}

/// A point-in-time view of one shard's serving metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Registered function name the shard serves.
    pub function: String,
    /// Backend the shard executes on (`"seq"`/`"par"`).
    pub backend: &'static str,
    /// `map ∘ map` stages source fusion collapsed in the shard's pack
    /// kernel (0 until the batcher finishes compiling, and for functions
    /// with no chained maps).
    pub fused_stages: usize,
    /// Requests admitted but not yet answered.
    pub queue_depth: usize,
    /// Requests accepted into the queue, ever.
    pub submitted: u64,
    /// Requests rejected with `Overloaded`, ever.
    pub rejected: u64,
    /// Requests answered (including error answers).
    pub completed: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Batches flushed by the dual-threshold policy.
    pub batches: u64,
    /// Mean flushed batch size.
    pub mean_batch: f64,
    /// Largest flushed batch.
    pub max_batch: usize,
    /// Batch-size histogram as `(bucket upper bound, count)` pairs.
    pub batch_hist: Vec<(u64, u64)>,
    /// Batches the cost model sent through the pack discipline.
    pub pack_batches: u64,
    /// Batches the cost model sent through the lanes discipline.
    pub lanes_batches: u64,
    /// Pack batches that completed as one fused machine run.
    pub fused_batches: u64,
    /// Pack mispredictions: batches where the cost model chose pack but
    /// the batch ran *worse* than predicted — the fused run faulted into
    /// the per-request fallback (paying for both disciplines), or it
    /// completed with more measured machine work than the predicted
    /// per-request `W'` × batch size budgeted.  A rising count says the
    /// symbolic cost model is picking badly for this shard's workload —
    /// the `NSC_PACK_CUTOFF` escape hatch is the operator's lever.
    pub pack_slower: u64,
    /// Median request latency (admission → reply), nanoseconds.
    pub p50_latency_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_latency_ns: u64,
    /// Mean request latency, nanoseconds.
    pub mean_latency_ns: f64,
}

impl Snapshot {
    /// The snapshot as a JSON object (the `{"cmd": "metrics"}` reply
    /// carries one per shard).
    pub fn to_json(&self) -> Json {
        let mut m = BTreeMap::new();
        m.insert("fn".into(), Json::Str(self.function.clone()));
        m.insert("backend".into(), Json::Str(self.backend.into()));
        m.insert("fused_stages".into(), Json::Num(self.fused_stages as f64));
        m.insert("queue_depth".into(), Json::Num(self.queue_depth as f64));
        m.insert("submitted".into(), Json::Num(self.submitted as f64));
        m.insert("rejected".into(), Json::Num(self.rejected as f64));
        m.insert("completed".into(), Json::Num(self.completed as f64));
        m.insert("errors".into(), Json::Num(self.errors as f64));
        m.insert("batches".into(), Json::Num(self.batches as f64));
        m.insert("mean_batch".into(), Json::Num(self.mean_batch));
        m.insert("max_batch".into(), Json::Num(self.max_batch as f64));
        m.insert(
            "batch_hist".into(),
            Json::Arr(
                self.batch_hist
                    .iter()
                    .map(|(ub, n)| Json::Arr(vec![Json::Num(*ub as f64), Json::Num(*n as f64)]))
                    .collect(),
            ),
        );
        m.insert("pack_batches".into(), Json::Num(self.pack_batches as f64));
        m.insert("lanes_batches".into(), Json::Num(self.lanes_batches as f64));
        m.insert("fused_batches".into(), Json::Num(self.fused_batches as f64));
        m.insert("pack_slower".into(), Json::Num(self.pack_slower as f64));
        m.insert(
            "p50_latency_ns".into(),
            Json::Num(self.p50_latency_ns as f64),
        );
        m.insert(
            "p99_latency_ns".into(),
            Json::Num(self.p99_latency_ns as f64),
        );
        m.insert("mean_latency_ns".into(), Json::Num(self.mean_latency_ns));
        Json::Obj(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Hist::default();
        for v in [0, 1, 1, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), 100);
        // p50 of {0,1,1,2,3,4,100}: rank 4 lands in the [2,3] bucket.
        assert_eq!(h.quantile(0.5), 3);
        // p99 lands in the last non-empty bucket, clamped to the max.
        assert_eq!(h.quantile(0.99), 100);
        // Bucket upper bounds are powers of two minus one.
        assert_eq!(h.nonempty(), vec![(0, 1), (1, 2), (3, 2), (7, 1), (127, 1)]);
        assert!((h.mean() - 111.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Hist::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.nonempty(), vec![]);
    }

    #[test]
    fn metrics_flow_through_snapshot() {
        let m = Metrics::default();
        m.on_admit();
        m.on_admit();
        m.on_admit();
        m.on_reject(); // rolls the third admission back
        m.on_batch(2, Some(nsc_runtime::BatchMode::Pack), true, true);
        m.on_reply(1000, false);
        m.on_reply(2000, true);
        let s = m.snapshot("f", "seq", 3);
        assert_eq!(s.fused_stages, 3);
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.completed, 2);
        assert_eq!(s.errors, 1);
        assert_eq!(s.queue_depth, 0);
        assert_eq!(s.batches, 1);
        assert_eq!(s.mean_batch, 2.0);
        assert_eq!(s.pack_batches, 1);
        assert_eq!(s.fused_batches, 1);
        assert_eq!(s.pack_slower, 1);
        assert!(s.p50_latency_ns >= 1000);
        let json = s.to_json().render();
        assert!(json.contains("\"mean_batch\": 2"));
        assert!(json.contains("\"fn\": \"f\""));
    }
}
