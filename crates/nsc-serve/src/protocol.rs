//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response per line, answered **in request
//! order per connection** (the front end reorders shard replies; see
//! [`crate::front`]).  Requests:
//!
//! ```json
//! {"fn": "main", "input": "[1, 2, 3]"}
//! {"fn": "main", "input": "[1, 2, 3]", "id": 7, "backend": "par"}
//! {"cmd": "metrics"}
//! {"cmd": "shutdown"}
//! ```
//!
//! `input` is a **string containing an NSC value literal** (the same
//! grammar `nsc run --input` accepts); `id` is any JSON scalar and is
//! echoed back verbatim; `backend` overrides the server's default shard
//! backend.  Responses:
//!
//! ```json
//! {"output": "[1, 4, 9]"}
//! {"id": 7, "error": "admission queue full", "kind": "overloaded"}
//! {"snapshots": [{"fn": "main", "backend": "seq", …}]}
//! {"ok": "draining"}
//! ```
//!
//! `kind` classifies errors machine-readably; in particular `"omega"`
//! (legitimate divergence) vs `"fault"` (a compiler/machine bug) is
//! exactly the single-run `EvalError` classification.

use crate::json::{self, Json};
use crate::ServeError;
use nsc_compile::Backend;
use std::collections::BTreeMap;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `{"fn": …, "input": …}` — run one request.
    Call {
        /// Registered function name.
        fn_name: String,
        /// NSC value literal text.
        input: String,
        /// Shard backend override.
        backend: Option<Backend>,
        /// Correlation id, echoed into the response.
        id: Option<Json>,
    },
    /// `{"cmd": "metrics"}` — dump every shard's [`crate::Snapshot`].
    Metrics,
    /// `{"cmd": "shutdown"}` — drain and stop the server.
    Shutdown,
}

fn bad(msg: impl Into<String>) -> ServeError {
    ServeError::BadRequest(msg.into())
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let doc = json::parse(line).map_err(|e| bad(e.to_string()))?;
    if !matches!(doc, Json::Obj(_)) {
        return Err(bad("request must be a JSON object"));
    }
    if let Some(cmd) = doc.get("cmd") {
        return match cmd.as_str() {
            Some("metrics") => Ok(Request::Metrics),
            Some("shutdown") => Ok(Request::Shutdown),
            _ => Err(bad("`cmd` must be \"metrics\" or \"shutdown\"")),
        };
    }
    let fn_name = doc
        .get("fn")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("missing string field `fn`"))?
        .to_string();
    let input = doc
        .get("input")
        .ok_or_else(|| bad("missing field `input`"))?
        .as_str()
        .ok_or_else(|| bad("`input` must be a string containing an NSC value literal"))?
        .to_string();
    let backend = match doc.get("backend") {
        None => None,
        Some(b) => match b.as_str() {
            Some("seq") => Some(Backend::Seq),
            Some("par") => Some(Backend::Par),
            _ => return Err(bad("`backend` must be \"seq\" or \"par\"")),
        },
    };
    let id = doc.get("id").cloned();
    if let Some(id) = &id {
        if matches!(id, Json::Arr(_) | Json::Obj(_)) {
            return Err(bad("`id` must be a JSON scalar"));
        }
    }
    Ok(Request::Call {
        fn_name,
        input,
        backend,
        id,
    })
}

fn with_id(mut fields: BTreeMap<String, Json>, id: Option<&Json>) -> String {
    if let Some(id) = id {
        fields.insert("id".into(), id.clone());
    }
    Json::Obj(fields).render()
}

/// Renders a success response line (no trailing newline).
pub fn render_output(id: Option<&Json>, output: &str) -> String {
    let mut m = BTreeMap::new();
    m.insert("output".into(), Json::Str(output.to_string()));
    with_id(m, id)
}

/// Renders an error response line (no trailing newline).
pub fn render_error(id: Option<&Json>, e: &ServeError) -> String {
    let mut m = BTreeMap::new();
    m.insert("error".into(), Json::Str(e.to_string()));
    m.insert("kind".into(), Json::Str(e.kind().into()));
    with_id(m, id)
}

/// Renders the `{"cmd": "metrics"}` reply.
pub fn render_snapshots(snapshots: &[crate::Snapshot]) -> String {
    let mut m = BTreeMap::new();
    m.insert(
        "snapshots".into(),
        Json::Arr(snapshots.iter().map(crate::Snapshot::to_json).collect()),
    );
    Json::Obj(m).render()
}

/// Renders the `{"cmd": "shutdown"}` acknowledgement.
pub fn render_draining() -> String {
    let mut m = BTreeMap::new();
    m.insert("ok".into(), Json::Str("draining".into()));
    Json::Obj(m).render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_calls_with_and_without_options() {
        assert_eq!(
            parse_request(r#"{"fn": "main", "input": "[1, 2]"}"#).unwrap(),
            Request::Call {
                fn_name: "main".into(),
                input: "[1, 2]".into(),
                backend: None,
                id: None,
            }
        );
        assert_eq!(
            parse_request(r#"{"fn": "f", "input": "()", "backend": "par", "id": 3}"#).unwrap(),
            Request::Call {
                fn_name: "f".into(),
                input: "()".into(),
                backend: Some(Backend::Par),
                id: Some(Json::Num(3.0)),
            }
        );
    }

    #[test]
    fn parses_commands() {
        assert_eq!(
            parse_request(r#"{"cmd": "metrics"}"#).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"cmd": "shutdown"}"#).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "",
            "not json",
            "[]",
            r#"{"fn": "f"}"#,
            r#"{"input": "[1]"}"#,
            r#"{"fn": "f", "input": [1, 2]}"#,
            r#"{"fn": "f", "input": "()", "backend": "gpu"}"#,
            r#"{"fn": "f", "input": "()", "id": [1]}"#,
            r#"{"cmd": "reboot"}"#,
        ] {
            let e = parse_request(bad).unwrap_err();
            assert_eq!(e.kind(), "bad-request", "{bad:?} -> {e}");
        }
    }

    #[test]
    fn responses_echo_the_id_and_escape_payloads() {
        let id = Json::Str("a\"b".into());
        assert_eq!(
            render_output(Some(&id), "[1, 4]"),
            r#"{"id": "a\"b", "output": "[1, 4]"}"#
        );
        let line = render_error(None, &ServeError::Overloaded);
        assert_eq!(
            line,
            r#"{"error": "admission queue full", "kind": "overloaded"}"#
        );
    }
}
