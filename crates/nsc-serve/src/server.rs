//! The server: function registry, shard directory, admission, drain.

use crate::shard::{ReplyFn, Shard};
use crate::{ServeError, Snapshot};
use nsc_compile::{Backend, OptLevel};
use nsc_core::parse::Module;
use nsc_core::types::Type;
use nsc_core::Func;
use nsc_runtime::CompiledCache;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Hook invoked with the batch size each time a shard flushes a batch
/// (before it executes).  Observability and test instrumentation — the
/// same role [`nsc_runtime::CompileHook`] plays for the cache.
pub type FlushHook = Arc<dyn Fn(usize) + Send + Sync>;

/// Server tuning knobs (see the crate docs for the flush policy).
#[derive(Clone)]
pub struct ServeConfig {
    /// Flush a batch at this many requests (size threshold).  `1`
    /// disables batching.
    pub max_batch: usize,
    /// Flush when this much time has passed since the oldest queued
    /// request (age threshold): the batching latency ceiling.
    pub max_wait: Duration,
    /// Admission queue capacity per shard; a full queue rejects with
    /// [`ServeError::Overloaded`].
    pub queue_cap: usize,
    /// Optimization level shards compile at.
    pub opt: OptLevel,
    /// Default backend (requests may override per call).
    pub backend: Backend,
    /// Flush observer, if any.
    pub on_flush: Option<FlushHook>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_millis(2),
            queue_cap: 1024,
            opt: OptLevel::O1,
            backend: Backend::Seq,
            on_flush: None,
        }
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("max_batch", &self.max_batch)
            .field("max_wait", &self.max_wait)
            .field("queue_cap", &self.queue_cap)
            .field("opt", &self.opt)
            .field("backend", &self.backend)
            .field("on_flush", &self.on_flush.as_ref().map(|_| "…"))
            .finish()
    }
}

/// A registered function: pretty-printed sources, because ASTs are
/// `Rc`-based and the shard re-parses on its own thread (faithful by the
/// `parse(pretty(f)) == f` round-trip property).
#[derive(Debug, Clone)]
struct FnSpec {
    fn_source: String,
    dom_source: String,
}

/// The micro-batching request server.
///
/// Register functions while you hold it exclusively, then share it
/// (`Arc`) with any number of submitting threads.  Shards spin up
/// lazily, on the first request per `(function, backend)`.
pub struct Server {
    cfg: ServeConfig,
    cache: Arc<CompiledCache>,
    fns: HashMap<String, FnSpec>,
    shards: Mutex<HashMap<(String, Backend), Arc<Shard>>>,
    draining: AtomicBool,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("functions", &self.fns.len())
            .field("shards", &self.shards.lock().unwrap().len())
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish()
    }
}

impl Server {
    /// An empty server (compiled programs cached in a fresh
    /// [`CompiledCache`]).
    pub fn new(cfg: ServeConfig) -> Server {
        Server::with_cache(cfg, Arc::new(CompiledCache::new()))
    }

    /// An empty server sharing an existing compiled-program cache (lets
    /// a caller pre-warm compilations, or share one cache between a
    /// server and direct [`nsc_runtime::BatchRunner`] use).
    pub fn with_cache(cfg: ServeConfig, cache: Arc<CompiledCache>) -> Server {
        Server {
            cfg,
            cache,
            fns: HashMap::new(),
            shards: Mutex::new(HashMap::new()),
            draining: AtomicBool::new(false),
        }
    }

    /// Registers `f : dom -> …` under `name`, replacing any previous
    /// registration of that name (existing shards keep serving the old
    /// definition; new shards see the new one — register before serving).
    pub fn register(&mut self, name: &str, f: &Func, dom: &Type) {
        self.fns.insert(
            name.to_string(),
            FnSpec {
                fn_source: f.to_string(),
                dom_source: dom.to_string(),
            },
        );
    }

    /// Registers every definition of a parsed `.nsc` module that can be
    /// inlined to a pure function (the compiler's precondition).
    /// Returns the definitions that were *skipped*, with the reason —
    /// e.g. recursive definitions, which evaluate but do not compile.
    pub fn register_module(&mut self, module: &Module) -> Vec<(String, String)> {
        let mut skipped = Vec::new();
        for def in &module.defs {
            match module.inlined(&def.name) {
                Ok(pure) => self.register(&def.name, &pure, &def.dom),
                Err(e) => skipped.push((def.name.to_string(), e.to_string())),
            }
        }
        skipped
    }

    /// The registered function names, sorted.
    pub fn functions(&self) -> Vec<String> {
        let mut names: Vec<String> = self.fns.keys().cloned().collect();
        names.sort();
        names
    }

    /// The shared compiled-program cache.
    pub fn cache(&self) -> &Arc<CompiledCache> {
        &self.cache
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Submits one request: `input` is NSC value literal text for
    /// registered function `fn_name`, `backend` overrides the default
    /// shard backend, and `reply` is invoked exactly once from the shard
    /// when the request is answered.
    ///
    /// Returns the shard-local admission sequence number.  Errors are
    /// *synchronous* rejections (unknown function, full queue, draining
    /// server) — `reply` is dropped uncalled and the caller reports the
    /// error itself.
    pub fn submit(
        &self,
        fn_name: &str,
        backend: Option<Backend>,
        input: String,
        reply: ReplyFn,
    ) -> Result<u64, ServeError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let spec = self
            .fns
            .get(fn_name)
            .ok_or_else(|| ServeError::UnknownFunction(fn_name.to_string()))?;
        let backend = backend.unwrap_or(self.cfg.backend);
        let shard = {
            let mut shards = self.shards.lock().unwrap();
            // Re-check under the directory lock: `drain` flips the flag
            // while holding it, so either this submit sees the flag, or
            // the shard it creates is visible to drain's collection — a
            // shard can never be spawned behind a completed drain.
            if self.draining.load(Ordering::SeqCst) {
                return Err(ServeError::ShuttingDown);
            }
            let key = (fn_name.to_string(), backend);
            Arc::clone(shards.entry(key).or_insert_with(|| {
                let mut cfg = self.cfg.clone();
                cfg.backend = backend;
                Arc::new(Shard::spawn(
                    fn_name,
                    spec.fn_source.clone(),
                    spec.dom_source.clone(),
                    &cfg,
                    Arc::clone(&self.cache),
                ))
            }))
        };
        shard.submit(input, reply)
    }

    /// Point-in-time metrics for every live shard, sorted by
    /// `(function, backend)` for stable output.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        let shards = self.shards.lock().unwrap();
        let mut keys: Vec<&(String, Backend)> = shards.keys().collect();
        keys.sort_by_key(|(name, b)| (name.clone(), b.name()));
        keys.iter().map(|k| shards[*k].snapshot()).collect()
    }

    /// Graceful drain: stop admitting, let every shard answer its queued
    /// requests, and join the batcher threads.  Idempotent; subsequent
    /// [`Server::submit`]s return [`ServeError::ShuttingDown`].
    pub fn drain(&self) {
        // Flag and collect under the directory lock (a racing submit
        // either observes the flag or has already inserted its shard),
        // but join outside it so `snapshots()` is not blocked meanwhile.
        let shards: Vec<Arc<Shard>> = {
            let shards = self.shards.lock().unwrap();
            self.draining.store(true, Ordering::SeqCst);
            shards.values().cloned().collect()
        };
        for shard in shards {
            shard.drain();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_core::ast as a;
    use std::sync::mpsc;

    fn square_server(cfg: ServeConfig) -> Server {
        let mut s = Server::new(cfg);
        let f = a::map(a::lam(
            "x",
            a::add(a::mul(a::var("x"), a::var("x")), a::nat(1)),
        ));
        s.register("sq1", &f, &Type::seq(Type::Nat));
        s
    }

    fn collect_submit(
        server: &Server,
        fn_name: &str,
        input: &str,
    ) -> Result<Result<String, ServeError>, ServeError> {
        let (tx, rx) = mpsc::channel();
        server.submit(
            fn_name,
            None,
            input.into(),
            Box::new(move |r: crate::Reply| {
                let _ = tx.send(r.result);
            }),
        )?;
        Ok(rx.recv().expect("reply delivered"))
    }

    #[test]
    fn serves_a_request_end_to_end() {
        let server = square_server(ServeConfig {
            max_wait: Duration::from_millis(0),
            ..ServeConfig::default()
        });
        let out = collect_submit(&server, "sq1", "[0, 1, 2, 3]").unwrap();
        assert_eq!(out.unwrap(), "[1, 2, 5, 10]");
        server.drain();
        // Shards answered everything before the join returned.
        let snaps = server.snapshots();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].completed, 1);
        assert_eq!(snaps[0].queue_depth, 0);
    }

    #[test]
    fn classifies_request_level_errors() {
        let server = square_server(ServeConfig {
            max_wait: Duration::from_millis(0),
            ..ServeConfig::default()
        });
        let cases = [
            ("sq1", "[1, }", "parse"),
            ("sq1", "(1, 2)", "domain"),
            ("nope", "[1]", "unknown-fn"),
        ];
        for (fn_name, input, kind) in cases {
            let got = match collect_submit(&server, fn_name, input) {
                Err(e) => e,
                Ok(r) => r.unwrap_err(),
            };
            assert_eq!(got.kind(), kind, "{fn_name} {input}");
        }
        server.drain();
    }

    #[test]
    fn draining_rejects_new_requests_and_is_idempotent() {
        let server = square_server(ServeConfig::default());
        server.drain();
        server.drain();
        let e = collect_submit(&server, "sq1", "[1]").unwrap_err();
        assert_eq!(e.kind(), "shutdown");
    }

    #[test]
    fn register_module_skips_what_it_cannot_compile() {
        let src = "\
fn main : [N] -> [N] = map((\\x. (x + 1)))
input [1, 2]
";
        let module = nsc_core::parse::parse_module(src).unwrap();
        module.check().unwrap();
        let mut server = Server::new(ServeConfig::default());
        let skipped = server.register_module(&module);
        assert!(skipped.is_empty());
        assert_eq!(server.functions(), vec!["main".to_string()]);
    }
}
