//! One `(function, backend)` shard: a bounded admission queue and its
//! batcher thread.
//!
//! ### Admission
//!
//! [`Shard::submit`] assigns the request a per-shard sequence number and
//! `try_send`s it into a *bounded* `sync_channel`.  A full queue rejects
//! with [`ServeError::Overloaded`] — backpressure instead of unbounded
//! memory growth.  Sequence numbers are assigned under the same lock that
//! enqueues, so **queue order equals sequence order**, and because the
//! batcher executes batches serially and replies in batch order, replies
//! within a shard are always delivered in admission order (property:
//! `tests/serve_props.rs`).
//!
//! ### The dual-threshold flush policy
//!
//! The batcher blocks for the first request, then keeps gathering until
//! *either*
//!
//! * the batch holds `max_batch` requests (size threshold — a full batch
//!   gains nothing by waiting), *or*
//! * `max_wait` has elapsed **since the oldest gathered request was
//!   enqueued** (age threshold — the latency an idle period can add to a
//!   request is bounded by `max_wait`, even while a trickle of later
//!   arrivals keeps the batch growing),
//!
//! whichever comes first.  A backlog that accumulated while the previous
//! batch executed is drained greedily before the timed gather, so a
//! saturated shard flushes full batches rather than degenerating to one
//! request per flush.  The flushed batch executes on
//! [`BatchRunner::run_batch`], whose cost model picks pack or lanes per
//! batch.  `max_wait = 0` disables *waiting* (backlog still batches);
//! only `max_batch = 1` disables batching itself, which is the baseline
//! `exp_serve` measures against.
//!
//! ### Lifecycle
//!
//! The batcher thread parses the shard's function source and compiles it
//! through the shared [`CompiledCache`] when it starts (requests arriving
//! meanwhile queue up behind the compilation; a failed compilation is
//! answered — and negatively cached — per request).  Dropping the sender
//! side ([`Shard::drain`]) lets the batcher drain every queued request,
//! flush, and exit; `drain` joins it.

use crate::metrics::Metrics;
use crate::{ServeConfig, ServeError};
use nsc_core::parse::{parse_func, parse_type, parse_value};
use nsc_runtime::repr::ErrorRepr;
use nsc_runtime::{BatchRunner, CompiledCache};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a request's reply callback receives.
#[derive(Debug)]
pub struct Reply {
    /// The shard-local admission sequence number [`Shard::submit`]
    /// returned for this request.
    pub seq: u64,
    /// Pretty-printed output value, or the classified error.
    pub result: Result<String, ServeError>,
    /// Admission-to-reply latency.
    pub latency: Duration,
}

/// The reply callback a request carries through the queue.
pub type ReplyFn = Box<dyn FnOnce(Reply) + Send>;

struct Job {
    seq: u64,
    input: String,
    enqueued: Instant,
    reply: ReplyFn,
}

/// A running shard handle (shared by the server and its front ends).
pub struct Shard {
    tx: Mutex<Option<SyncSender<Job>>>,
    seq: AtomicU64,
    metrics: Arc<Metrics>,
    handle: Mutex<Option<JoinHandle<()>>>,
    function: String,
    backend_name: &'static str,
    /// `map ∘ map` stages source fusion collapsed in this shard's pack
    /// kernel — written once by the batcher after it compiles, read by
    /// [`Shard::snapshot`] (0 until compilation finishes or if it fails).
    fused_stages: Arc<AtomicUsize>,
}

impl std::fmt::Debug for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shard")
            .field("function", &self.function)
            .field("backend", &self.backend_name)
            .field("submitted", &self.seq.load(Ordering::Relaxed))
            .finish()
    }
}

/// Stack for batcher threads: compilation recurses with program depth
/// (same sizing rationale as the `nsc` CLI driver thread).
const BATCHER_STACK: usize = 256 * 1024 * 1024;

impl Shard {
    /// Spawns the batcher thread for `function_name`, whose definition
    /// travels as pretty-printed source (`fn_source`, with its domain as
    /// `dom_source`) because ASTs are not `Send`; the batcher re-parses
    /// and compiles through `cache` on its own stack.
    pub fn spawn(
        function_name: &str,
        fn_source: String,
        dom_source: String,
        cfg: &ServeConfig,
        cache: Arc<CompiledCache>,
    ) -> Shard {
        let (tx, rx) = std::sync::mpsc::sync_channel(cfg.queue_cap.max(1));
        let metrics = Arc::new(Metrics::default());
        let fused_stages = Arc::new(AtomicUsize::new(0));
        let thread_cfg = cfg.clone();
        let thread_metrics = Arc::clone(&metrics);
        let thread_fused = Arc::clone(&fused_stages);
        let handle = std::thread::Builder::new()
            .name(format!("nsc-serve/{function_name}:{}", cfg.backend.name()))
            .stack_size(BATCHER_STACK)
            .spawn(move || {
                batcher(
                    rx,
                    fn_source,
                    dom_source,
                    thread_cfg,
                    cache,
                    thread_metrics,
                    thread_fused,
                )
            })
            .expect("spawn batcher thread");
        Shard {
            tx: Mutex::new(Some(tx)),
            seq: AtomicU64::new(0),
            metrics,
            handle: Mutex::new(Some(handle)),
            function: function_name.to_string(),
            backend_name: cfg.backend.name(),
            fused_stages,
        }
    }

    /// Admits one request, returning its shard-local sequence number, or
    /// rejects it ([`ServeError::Overloaded`] on a full queue,
    /// [`ServeError::ShuttingDown`] after [`Shard::drain`]).  On
    /// rejection `reply` is dropped unchanged — the caller reports the
    /// error itself.
    pub fn submit(&self, input: String, reply: ReplyFn) -> Result<u64, ServeError> {
        // Sequence assignment and enqueue happen under one lock so queue
        // order is sequence order (the no-reorder contract's anchor).
        let guard = self.tx.lock().unwrap();
        let Some(tx) = guard.as_ref() else {
            return Err(ServeError::ShuttingDown);
        };
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let job = Job {
            seq,
            input,
            enqueued: Instant::now(),
            reply,
        };
        // Admit in the metrics *before* the send: once the job is in the
        // channel the batcher may reply (decrementing the depth gauge)
        // at any moment, so the increment must already be visible.
        self.metrics.on_admit();
        match tx.try_send(job) {
            Ok(()) => Ok(seq),
            Err(TrySendError::Full(_)) => {
                self.metrics.on_reject();
                Err(ServeError::Overloaded)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.metrics.on_retract();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Point-in-time metrics.
    pub fn snapshot(&self) -> crate::Snapshot {
        self.metrics.snapshot(
            &self.function,
            self.backend_name,
            self.fused_stages.load(Ordering::Relaxed),
        )
    }

    /// Closes admission, lets the batcher drain every queued request,
    /// and joins it.  Idempotent.
    pub fn drain(&self) {
        drop(self.tx.lock().unwrap().take());
        let handle = self.handle.lock().unwrap().take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }
}

fn batcher(
    rx: Receiver<Job>,
    fn_source: String,
    dom_source: String,
    cfg: ServeConfig,
    cache: Arc<CompiledCache>,
    metrics: Arc<Metrics>,
    fused_stages: Arc<AtomicUsize>,
) {
    let runner = (|| -> Result<BatchRunner, ServeError> {
        let f = parse_func(&fn_source)
            .map_err(|e| ServeError::Compile(format!("re-parsing registered function: {e}")))?;
        let dom = parse_type(&dom_source)
            .map_err(|e| ServeError::Compile(format!("re-parsing registered domain: {e}")))?;
        BatchRunner::from_cache(&cache, &f, &dom, cfg.opt, cfg.backend)
            .map_err(|e| ServeError::Compile(e.to_string()))
    })();
    let runner = match runner {
        Ok(r) => {
            fused_stages.store(r.cached().batch.fused_stages, Ordering::Relaxed);
            r
        }
        Err(e) => {
            // The compilation failure is this shard's permanent answer.
            while let Ok(job) = rx.recv() {
                finish(job, Err(e.clone()), &metrics);
            }
            return;
        }
    };

    loop {
        // Block for the oldest request of the next batch; `Err` means
        // admission is closed and the queue is fully drained.
        let first = match rx.recv() {
            Ok(job) => job,
            Err(_) => return,
        };
        let mut batch = vec![first];
        let max_batch = cfg.max_batch.max(1);
        // A backlog that built up while the previous batch executed is
        // already past any age threshold — drain it greedily first, so a
        // saturated shard flushes full batches instead of degenerating to
        // one request per flush.
        while batch.len() < max_batch {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        // Gather under the dual threshold: flush at `max_batch` requests
        // or `max_wait` past the *oldest* request's enqueue, first wins.
        let deadline = batch[0].enqueued + cfg.max_wait;
        let mut disconnected = false;
        while batch.len() < max_batch {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match rx.recv_timeout(deadline - now) {
                Ok(job) => batch.push(job),
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }
        execute(batch, &runner, &cfg, &metrics);
        if disconnected {
            // Admission closed and the channel is empty: drained.
            return;
        }
    }
}

/// Runs one flushed batch and replies to every request, in batch order.
fn execute(batch: Vec<Job>, runner: &BatchRunner, cfg: &ServeConfig, metrics: &Arc<Metrics>) {
    if let Some(hook) = &cfg.on_flush {
        hook(batch.len());
    }
    let dom = runner.dom();
    // Parse and domain-check on this thread (values are not Send);
    // malformed requests are answered without touching the machine.
    let prepared: Vec<Result<nsc_core::value::Value, ServeError>> = batch
        .iter()
        .map(|job| match parse_value(&job.input) {
            Err(e) => Err(ServeError::InvalidInput(e.to_string())),
            Ok(v) => {
                if dom.admits(&v) {
                    Ok(v)
                } else {
                    Err(ServeError::Domain {
                        value: job.input.clone(),
                        dom: dom.to_string(),
                    })
                }
            }
        })
        .collect();
    let valid: Vec<nsc_core::value::Value> = prepared
        .iter()
        .filter_map(|r| r.as_ref().ok().cloned())
        .collect();
    // A single valid request runs the single-request program directly —
    // the pack kernel and the lanes pool only pay off from 2 requests up,
    // and `max_batch = 1` (no batching) must mean genuine single-run
    // latency, not "a batch of one".
    let (results, mode, fused, pack_slower) = match valid.len() {
        0 => (Vec::new(), None, false, false),
        1 => (
            vec![runner.run_single(&valid[0]).map(|(v, _)| v)],
            None,
            false,
            false,
        ),
        _ => {
            let o = runner.run_batch(&valid);
            // A pack misprediction: the cost model chose pack but the
            // batch ran worse than predicted — either the fused run
            // faulted into the per-request fallback (paying for both
            // disciplines), or it finished with more measured work than
            // the predicted per-request W' × B it was budgeted.
            let slower = o.mode == nsc_runtime::BatchMode::Pack
                && (!o.fused
                    || o.predicted_work
                        .is_some_and(|w| o.cost.work > w.saturating_mul(valid.len() as u64)));
            (o.results, Some(o.mode), o.fused, slower)
        }
    };
    metrics.on_batch(batch.len(), mode, fused, pack_slower);
    let mut results = results.into_iter();
    for (job, prep) in batch.into_iter().zip(prepared) {
        let result = match prep {
            Err(e) => Err(e),
            Ok(_) => match results.next().expect("one result per valid request") {
                Ok(v) => Ok(v.to_string()),
                Err(e) => Err(ServeError::Eval(ErrorRepr::of(&e))),
            },
        };
        finish(job, result, metrics);
    }
}

fn finish(job: Job, result: Result<String, ServeError>, metrics: &Arc<Metrics>) {
    let latency = job.enqueued.elapsed();
    metrics.on_reply(
        latency.as_nanos().min(u128::from(u64::MAX)) as u64,
        result.is_err(),
    );
    (job.reply)(Reply {
        seq: job.seq,
        result,
        latency,
    });
}
