//! Server-routed requests are bit-identical to direct single runs, for
//! every runnable stdlib function.
//!
//! Each subject is registered with one [`Server`] and served through the
//! full path — value literal in, dual-threshold batcher, `run_batch`,
//! pretty-printed value out — while the oracle runs the same input
//! through [`BatchRunner::run_single`] (exactly what `nsc run` executes
//! per request).  Outputs must match as strings and errors must carry
//! the same `Ω`-vs-machine-fault classification, over randomized batches
//! that mix valid shapes with fault-triggering ones.
//!
//! The server and the oracle share one `CompiledCache`
//! ([`Server::with_cache`]), so each subject compiles once; the sweep
//! runs on a big-stack worker thread like the `nsc` CLI driver because
//! the compiler recurses with program depth.

use nsc_core::ast as a;
use nsc_core::error::EvalError;
use nsc_core::stdlib;
use nsc_core::types::Type;
use nsc_core::value::Value;
use nsc_runtime::{BatchRunner, CompiledCache};
use nsc_serve::{Reply, ServeConfig, ServeError, Server};
use proptest::prelude::*;
use std::cell::OnceCell;
use std::sync::{mpsc, Arc};
use std::time::Duration;

fn on_big_stack(f: fn()) {
    std::thread::Builder::new()
        .name("serve-equiv-worker".into())
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn worker")
        .join()
        .expect("worker panicked");
}

// Word-stream randomization, the `tests/properties.rs` idiom.
struct Words<'a> {
    ws: &'a [u64],
    i: usize,
}

impl Words<'_> {
    fn new(ws: &[u64]) -> Words<'_> {
        Words { ws, i: 0 }
    }

    fn next(&mut self) -> u64 {
        let w = self.ws[self.i % self.ws.len()];
        self.i += 1;
        w.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self.i as u64))
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn nat_vec(w: &mut Words, max_len: u64, max: u64) -> Vec<u64> {
    let n = w.pick(max_len + 1);
    (0..n).map(|_| w.pick(max)).collect()
}

fn nat_seq(w: &mut Words, max_len: u64, max: u64) -> Value {
    Value::nat_seq(nat_vec(w, max_len, max))
}

fn pair_seq(w: &mut Words) -> Value {
    let n = w.pick(7);
    Value::seq(
        (0..n)
            .map(|_| Value::pair(Value::nat(w.pick(50)), Value::nat(w.pick(50))))
            .collect(),
    )
}

fn sum_elem_seq(w: &mut Words) -> Value {
    let n = w.pick(7);
    Value::seq(
        (0..n)
            .map(|_| {
                if w.pick(2) == 0 {
                    Value::inl(Value::nat(w.pick(50)))
                } else {
                    Value::inr(Value::nat(w.pick(50)))
                }
            })
            .collect(),
    )
}

fn indices(w: &mut Words, n: u64) -> Vec<u64> {
    let k = w.pick(n + 2);
    let mut out: Vec<u64> = (0..k).map(|_| w.pick(n.max(1) + 1)).collect();
    out.sort_unstable();
    out.dedup();
    out
}

type Gen = Box<dyn Fn(&mut Words) -> Value>;

/// Every runnable stdlib function with a generator mixing valid and
/// `Ω`/fault-triggering inputs (the `batch_equiv` suite, served).
fn subjects() -> Vec<(&'static str, nsc_core::Func, Type, Gen)> {
    let nn = Type::prod(Type::Nat, Type::Nat);
    let seq_n = Type::seq(Type::Nat);
    let gt0 = a::lam("p0", a::lt(a::nat(0), a::var("p0")));
    let idx_pair_gen = |w: &mut Words| {
        let c = nat_vec(w, 6, 90);
        let i = indices(w, c.len() as u64);
        Value::pair(Value::nat_seq(c), Value::nat_seq(i))
    };
    let seq_nat_gen = |w: &mut Words| {
        let xs = nat_vec(w, 6, 90);
        let m = w.pick(xs.len() as u64 + 2);
        Value::pair(Value::nat_seq(xs), Value::nat(m))
    };
    vec![
        (
            "pi1",
            stdlib::pi1(),
            Type::seq(nn.clone()),
            Box::new(pair_seq),
        ),
        (
            "pi2",
            stdlib::pi2(),
            Type::seq(nn.clone()),
            Box::new(pair_seq),
        ),
        (
            "broadcast",
            stdlib::broadcast(),
            Type::prod(Type::Nat, seq_n.clone()),
            Box::new(|w| Value::pair(Value::nat(w.pick(90)), nat_seq(w, 6, 50))),
        ),
        (
            "sigma1",
            stdlib::sigma1(&Type::Nat),
            Type::seq(Type::sum(Type::Nat, Type::Nat)),
            Box::new(sum_elem_seq),
        ),
        (
            "sigma2",
            stdlib::sigma2(&Type::Nat),
            Type::seq(Type::sum(Type::Nat, Type::Nat)),
            Box::new(sum_elem_seq),
        ),
        (
            "filter_gt0",
            stdlib::filter(gt0, &Type::Nat),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 8, 5)),
        ),
        (
            "index",
            a::lam(
                "p",
                stdlib::index(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
            Box::new(idx_pair_gen),
        ),
        (
            "index_split",
            a::lam(
                "p",
                stdlib::index_split(a::fst(a::var("p")), a::snd(a::var("p"))),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
            Box::new(idx_pair_gen),
        ),
        (
            "nth",
            a::lam(
                "p",
                stdlib::nth(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
            Box::new(|w| {
                let xs = nat_vec(w, 6, 90);
                let i = w.pick(xs.len() as u64 + 2);
                Value::pair(Value::nat_seq(xs), Value::nat(i))
            }),
        ),
        (
            "take",
            a::lam(
                "p",
                stdlib::take(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
            Box::new(seq_nat_gen),
        ),
        (
            "drop",
            a::lam(
                "p",
                stdlib::drop(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
            Box::new(seq_nat_gen),
        ),
        (
            "first",
            a::lam("x", stdlib::first(a::var("x"), &Type::Nat)),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 90)),
        ),
        (
            "last",
            a::lam("x", stdlib::last(a::var("x"), &Type::Nat)),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 90)),
        ),
        (
            "tail",
            a::lam("x", stdlib::tail(a::var("x"), &Type::Nat)),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 90)),
        ),
        (
            "remove_last",
            a::lam("x", stdlib::remove_last(a::var("x"), &Type::Nat)),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 90)),
        ),
        (
            "isqrt_pow2",
            a::lam("x", stdlib::isqrt_pow2(a::var("x"))),
            Type::Nat,
            Box::new(|w| Value::nat(w.pick(1 << 12))),
        ),
        (
            "sum_seq",
            a::lam("x", stdlib::numeric::sum_seq(a::var("x"))),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 16)),
        ),
        (
            "maximum",
            a::lam("x", stdlib::maximum(a::var("x"))),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 16)),
        ),
        (
            "prefix_sum",
            a::lam("x", stdlib::prefix_sum(a::var("x"))),
            seq_n.clone(),
            Box::new(|w| nat_seq(w, 4, 16)),
        ),
        (
            "bm_route",
            a::lam(
                "p",
                stdlib::bm_route(
                    a::fst(a::fst(a::var("p"))),
                    a::snd(a::fst(a::var("p"))),
                    a::snd(a::var("p")),
                ),
            ),
            Type::prod(Type::prod(seq_n.clone(), seq_n.clone()), seq_n.clone()),
            Box::new(|w| {
                let x = nat_vec(w, 4, 90);
                let d: Vec<u64> = x.iter().map(|_| w.pick(3)).collect();
                let mut total: u64 = d.iter().sum();
                if w.pick(5) == 0 {
                    total += 1; // break Σd = |u| sometimes (error path)
                }
                let u: Vec<u64> = (0..total).collect();
                Value::pair(
                    Value::pair(Value::nat_seq(u), Value::nat_seq(d)),
                    Value::nat_seq(x),
                )
            }),
        ),
        (
            "m_route",
            a::lam(
                "p",
                stdlib::m_route(a::fst(a::var("p")), a::snd(a::var("p"))),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
            Box::new(|w| {
                let x = nat_vec(w, 3, 16);
                let d: Vec<u64> = x.iter().map(|_| w.pick(3)).collect();
                Value::pair(Value::nat_seq(d), Value::nat_seq(x))
            }),
        ),
        (
            "combine_flags",
            a::lam(
                "p",
                stdlib::combine_flags(
                    a::fst(a::var("p")),
                    a::fst(a::snd(a::var("p"))),
                    a::snd(a::snd(a::var("p"))),
                    &Type::Nat,
                ),
            ),
            Type::prod(
                Type::seq(Type::bool_()),
                Type::prod(seq_n.clone(), seq_n.clone()),
            ),
            Box::new(|w| {
                let flags: Vec<bool> = (0..w.pick(5)).map(|_| w.pick(2) == 1).collect();
                let mut t = flags.iter().filter(|b| **b).count() as u64;
                let mut f = flags.len() as u64 - t;
                if w.pick(5) == 0 {
                    t += 1; // wrong payload length sometimes (error path)
                }
                if w.pick(5) == 0 {
                    f += 1;
                }
                Value::pair(
                    Value::seq(flags.iter().map(|b| Value::bool_(*b)).collect()),
                    Value::pair(
                        Value::nat_seq((0..t).map(|i| i * 3)),
                        Value::nat_seq((0..f).map(|i| 100 + i)),
                    ),
                )
            }),
        ),
    ]
}

struct Suite {
    server: Arc<Server>,
    /// `(name, oracle runner, generator)` per subject.
    oracles: Vec<(&'static str, BatchRunner, Gen)>,
}

thread_local! {
    static SUITE: OnceCell<Suite> = const { OnceCell::new() };
}

fn with_suite<R>(f: impl FnOnce(&Suite) -> R) -> R {
    SUITE.with(|cell| {
        let suite = cell.get_or_init(|| {
            let cache = Arc::new(CompiledCache::new());
            let mut server = Server::with_cache(
                ServeConfig {
                    max_batch: 8,
                    max_wait: Duration::from_millis(1),
                    queue_cap: 4096,
                    ..ServeConfig::default()
                },
                Arc::clone(&cache),
            );
            let mut oracles = Vec::new();
            for (name, f, dom, gen) in subjects() {
                server.register(name, &f, &dom);
                let runner = BatchRunner::from_cache(
                    &cache,
                    &f,
                    &dom,
                    nsc_compile::OptLevel::O1,
                    nsc_compile::Backend::Seq,
                )
                .unwrap_or_else(|e| panic!("compiling {name}: {e}"));
                oracles.push((name, runner, gen));
            }
            Suite {
                server: Arc::new(server),
                oracles,
            }
        });
        f(suite)
    })
}

/// What the server must answer for one oracle verdict.
fn expect_of(oracle: Result<(Value, nsc_core::Cost), EvalError>) -> Result<String, &'static str> {
    match oracle {
        Ok((v, _)) => Ok(v.to_string()),
        Err(EvalError::Omega) => Err("omega"),
        Err(EvalError::MachineFault(_)) => Err("fault"),
        Err(_) => Err("eval"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// No `#[test]` attribute: driven by the big-stack wrapper below.
    fn served_stdlib_matches_single_runs_inner(
        words in proptest::collection::vec(0u64..u64::MAX, 8..40),
    ) {
        with_suite(|suite| -> Result<(), proptest::test_runner::TestCaseError> {
            let mut w = Words::new(&words);
            for (name, runner, gen) in &suite.oracles {
                let b = w.pick(5) as usize;
                let inputs: Vec<Value> = (0..b).map(|_| gen(&mut w)).collect();
                let (tx, rx) = mpsc::channel::<(usize, Reply)>();
                for (i, v) in inputs.iter().enumerate() {
                    let tx = tx.clone();
                    suite
                        .server
                        .submit(
                            name,
                            None,
                            v.to_string(),
                            Box::new(move |r| {
                                let _ = tx.send((i, r));
                            }),
                        )
                        .unwrap_or_else(|e| panic!("{name}: admission failed: {e}"));
                }
                drop(tx);
                let mut got: Vec<Option<Result<String, ServeError>>> =
                    (0..b).map(|_| None).collect();
                for _ in 0..b {
                    let (i, r) = rx
                        .recv_timeout(Duration::from_secs(300))
                        .expect("served reply");
                    got[i] = Some(r.result);
                }
                for (i, v) in inputs.iter().enumerate() {
                    let want = expect_of(runner.run_single(v));
                    match (got[i].as_ref().unwrap(), &want) {
                        (Ok(out), Ok(exp)) => prop_assert_eq!(
                            out, exp, "{}: request {} output diverges", name, i
                        ),
                        (Err(e), Err(kind)) => prop_assert_eq!(
                            e.kind(), *kind, "{}: request {} classification", name, i
                        ),
                        (got, want) => prop_assert!(
                            false, "{}: request {}: served {:?} vs single-run {:?}",
                            name, i, got, want
                        ),
                    }
                }
            }
            Ok(())
        })?;
    }
}

#[test]
fn served_stdlib_matches_single_runs() {
    on_big_stack(served_stdlib_matches_single_runs_inner);
}
