//! Server behavior under randomized traffic and adversarial timing:
//!
//! * **No reorder** (the satellite property): within a shard, replies are
//!   delivered in strictly increasing admission-sequence order, for every
//!   combination of flush thresholds, batch shapes, and mixed
//!   valid/`Ω`/malformed inputs — and each reply's payload matches the
//!   source-semantics evaluator's verdict for that request.
//! * **Backpressure**: a full admission queue rejects with `Overloaded`
//!   (deterministically, using the flush hook to hold the batcher), and
//!   every *accepted* request is still answered, in order.
//! * **Dual-threshold flushes**: the size threshold flushes a full batch
//!   without waiting out `max_wait`; the age threshold flushes a partial
//!   batch once the oldest request is old enough.
//! * **TCP front end**: pipelined requests across several shards come
//!   back in request order per connection; `{"cmd": "shutdown"}` drains
//!   gracefully (every queued request answered first).

use nsc_core::ast as a;
use nsc_core::types::Type;
use nsc_core::value::Value;
use nsc_serve::{Reply, ServeConfig, Server};
use proptest::prelude::*;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// `map (λx. x·x + 1)` — and `get` of the whole sequence to manufacture
/// `Ω` on non-singletons.
fn sq1() -> nsc_core::Func {
    a::map(a::lam(
        "x",
        a::add(a::mul(a::var("x"), a::var("x")), a::nat(1)),
    ))
}

fn get_fn() -> nsc_core::Func {
    a::lam("x", a::get(a::var("x")))
}

fn server_with(cfg: ServeConfig) -> Arc<Server> {
    let mut s = Server::new(cfg);
    s.register("sq1", &sq1(), &Type::seq(Type::Nat));
    s.register("get", &get_fn(), &Type::seq(Type::Nat));
    Arc::new(s)
}

/// The source-semantics oracle for one request: what should the server
/// answer for `input` to `fn_name`?
fn oracle(fn_name: &str, input: &Value) -> Result<String, &'static str> {
    let f = match fn_name {
        "sq1" => sq1(),
        "get" => get_fn(),
        _ => unreachable!(),
    };
    match nsc_core::eval::apply_func(&f, input.clone()) {
        Ok((v, _)) => Ok(v.to_string()),
        Err(_) => Err("omega"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The no-reorder property: whatever the thresholds and the traffic,
    /// a shard's replies come back in admission order with the right
    /// payloads.
    #[test]
    fn replies_never_reorder_within_a_shard(
        max_batch in 1usize..6,
        max_wait_ms in 0u64..4,
        words in proptest::collection::vec(0u64..1000, 1..30),
    ) {
        let server = server_with(ServeConfig {
            max_batch,
            max_wait: Duration::from_millis(max_wait_ms),
            queue_cap: 4096,
            ..ServeConfig::default()
        });
        let (tx, rx) = mpsc::channel::<Reply>();
        // One shard ("sq1"), randomized inputs: valid sequences, the
        // occasional literal that does not parse, inputs outside the
        // domain.  All are answered through the same FIFO.
        let mut expected = Vec::new();
        for (i, w) in words.iter().enumerate() {
            let input = match w % 7 {
                0 => "[1, ".to_string(),                   // parse error
                1 => "(1, 2)".to_string(),                 // domain error
                _ => Value::nat_seq((0..w % 5).map(|j| j + i as u64)).to_string(),
            };
            let tx = tx.clone();
            let seq = server
                .submit("sq1", None, input.clone(), Box::new(move |r| {
                    let _ = tx.send(r);
                }))
                .expect("queue_cap is larger than the workload");
            prop_assert_eq!(seq, i as u64, "admission sequence is dense");
            expected.push(input);
        }
        drop(tx);
        server.drain();
        let replies: Vec<Reply> = rx.iter().collect();
        prop_assert_eq!(replies.len(), expected.len(), "every accepted request answered");
        for (i, r) in replies.iter().enumerate() {
            prop_assert_eq!(r.seq, i as u64, "reply order == admission order");
            let input = &expected[i];
            match input.as_str() {
                "[1, " => prop_assert_eq!(r.result.as_ref().unwrap_err().kind(), "parse"),
                "(1, 2)" => prop_assert_eq!(r.result.as_ref().unwrap_err().kind(), "domain"),
                _ => {
                    let v = nsc_core::parse::parse_value(input).unwrap();
                    match (&r.result, oracle("sq1", &v)) {
                        (Ok(out), Ok(want)) => prop_assert_eq!(out, &want),
                        (Err(e), Err(kind)) => prop_assert_eq!(e.kind(), kind),
                        (got, want) => prop_assert!(false, "req {}: {:?} vs oracle {:?}", i, got, want),
                    }
                }
            }
        }
    }

    /// Multi-threaded admission: sequence numbers are raced for, but the
    /// reply stream still follows them monotonically.
    #[test]
    fn concurrent_submitters_still_see_ordered_replies(
        per_thread in 1usize..12,
        max_batch in 1usize..5,
    ) {
        let server = server_with(ServeConfig {
            max_batch,
            max_wait: Duration::from_millis(1),
            queue_cap: 4096,
            ..ServeConfig::default()
        });
        let (tx, rx) = mpsc::channel::<Reply>();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let server = Arc::clone(&server);
                let tx = tx.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let tx = tx.clone();
                        let input = Value::nat_seq(0..(t + i as u64) % 4).to_string();
                        server
                            .submit("sq1", None, input, Box::new(move |r| {
                                let _ = tx.send(r);
                            }))
                            .expect("under capacity");
                    }
                });
            }
        });
        drop(tx);
        server.drain();
        let seqs: Vec<u64> = rx.iter().map(|r| r.seq).collect();
        prop_assert_eq!(seqs.len(), per_thread * 4);
        // The single batcher replies strictly in admission order even
        // though admission itself was contended.
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&seqs, &sorted, "monotone reply stream");
    }
}

/// Deterministic backpressure: hold the batcher inside a flush, fill the
/// queue to capacity, and watch the next submission bounce.
#[test]
fn full_queue_rejects_with_overloaded_and_accepted_work_completes() {
    let queue_cap = 3;
    // The hook blocks the *first* flush until we release it.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let (started_tx, started_rx) = mpsc::channel::<()>();
    let gate = Mutex::new(Some((gate_rx, started_tx)));
    let server = server_with(ServeConfig {
        max_batch: 1,
        max_wait: Duration::from_millis(0),
        queue_cap,
        on_flush: Some(Arc::new(move |_size| {
            if let Some((rx, started)) = gate.lock().unwrap().take() {
                let _ = started.send(());
                let _ = rx.recv();
            }
        })),
        ..ServeConfig::default()
    });
    let (tx, rx) = mpsc::channel::<Reply>();
    let submit = |i: u64| {
        let tx = tx.clone();
        server.submit(
            "sq1",
            None,
            format!("[{i}]"),
            Box::new(move |r| {
                let _ = tx.send(r);
            }),
        )
    };
    // First request reaches the batcher, which stalls in the hook.
    submit(0).unwrap();
    started_rx.recv().unwrap();
    // The queue is now empty and the batcher is busy: exactly
    // `queue_cap` more requests fit, the next one must bounce.
    for i in 1..=queue_cap as u64 {
        submit(i).unwrap_or_else(|e| panic!("request {i} should be admitted: {e}"));
    }
    let err = submit(99).unwrap_err();
    assert_eq!(err.kind(), "overloaded");
    // Release the batcher; everything accepted completes, in order.
    gate_tx.send(()).unwrap();
    drop(tx);
    server.drain();
    let replies: Vec<Reply> = rx.iter().collect();
    assert_eq!(replies.len(), 1 + queue_cap);
    for (i, r) in replies.iter().enumerate() {
        assert_eq!(r.seq, i as u64);
        assert_eq!(
            r.result.as_deref().unwrap(),
            format!("[{}]", (i as u64) * (i as u64) + 1)
        );
    }
    let snap = &server.snapshots()[0];
    assert_eq!(snap.rejected, 1);
    assert_eq!(snap.completed, 1 + queue_cap as u64);
}

/// The size threshold: a full batch flushes immediately, long before a
/// (deliberately huge) max_wait could.
#[test]
fn size_threshold_flushes_without_waiting() {
    let sizes: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let sizes_hook = Arc::clone(&sizes);
    let server = server_with(ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_secs(3600),
        queue_cap: 64,
        on_flush: Some(Arc::new(move |s| sizes_hook.lock().unwrap().push(s))),
        ..ServeConfig::default()
    });
    let (tx, rx) = mpsc::channel::<Reply>();
    for i in 0..4u64 {
        let tx = tx.clone();
        server
            .submit(
                "sq1",
                None,
                format!("[{i}]"),
                Box::new(move |r| {
                    let _ = tx.send(r);
                }),
            )
            .unwrap();
    }
    // All four replies arrive without waiting out the hour.
    for _ in 0..4 {
        rx.recv_timeout(Duration::from_secs(60))
            .expect("size-threshold flush");
    }
    server.drain();
    assert!(
        sizes.lock().unwrap().contains(&4),
        "a full batch of 4 flushed: {:?}",
        sizes.lock().unwrap()
    );
}

/// The age threshold: a partial batch flushes once the oldest queued
/// request is `max_wait` old, gathering everything that arrived
/// meanwhile.
#[test]
fn age_threshold_flushes_partial_batches() {
    let sizes: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let sizes_hook = Arc::clone(&sizes);
    let server = server_with(ServeConfig {
        max_batch: 1000,
        max_wait: Duration::from_millis(150),
        queue_cap: 64,
        on_flush: Some(Arc::new(move |s| sizes_hook.lock().unwrap().push(s))),
        ..ServeConfig::default()
    });
    let (tx, rx) = mpsc::channel::<Reply>();
    for i in 0..3u64 {
        let tx = tx.clone();
        server
            .submit(
                "sq1",
                None,
                format!("[{i}]"),
                Box::new(move |r| {
                    let _ = tx.send(r);
                }),
            )
            .unwrap();
    }
    for _ in 0..3 {
        rx.recv_timeout(Duration::from_secs(60))
            .expect("age-threshold flush");
    }
    server.drain();
    let sizes = sizes.lock().unwrap();
    // All three were submitted back-to-back, far faster than 40ms: they
    // flush together (possibly split across two batches if the batcher
    // thread won a race, but never three degenerate singletons).
    assert!(
        sizes.iter().sum::<usize>() == 3 && sizes.len() <= 2,
        "age-threshold gathered the trickle: {sizes:?}"
    );
}

/// The TCP front: pipelined requests across two shards answer in
/// request order per connection, and shutdown drains gracefully.
#[test]
fn tcp_front_orders_responses_and_drains_on_shutdown() {
    use std::io::{BufRead, BufReader, Write};

    let server = {
        let mut s = Server::new(ServeConfig {
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        });
        s.register("sq1", &sq1(), &Type::seq(Type::Nat));
        s.register("get", &get_fn(), &Type::seq(Type::Nat));
        Arc::new(s)
    };
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind an ephemeral port");
    let addr = listener.local_addr().unwrap();
    let server2 = Arc::clone(&server);
    let serving =
        std::thread::spawn(move || nsc_serve::front::serve_tcp(&server2, listener).unwrap());

    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    // Pipeline across both shards before reading anything; `get` on a
    // 2-element sequence is Ω, classified as such over the wire.
    let lines = [
        r#"{"fn": "sq1", "input": "[1, 2, 3]", "id": 0}"#,
        r#"{"fn": "get", "input": "[7]", "id": 1}"#,
        r#"{"fn": "get", "input": "[7, 8]", "id": 2}"#,
        r#"{"fn": "sq1", "input": "[0]", "id": 3}"#,
    ];
    for l in lines {
        writeln!(stream, "{l}").unwrap();
    }
    stream.flush().unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut got = Vec::new();
    for _ in 0..lines.len() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        got.push(line.trim().to_string());
    }
    assert_eq!(got[0], r#"{"id": 0, "output": "[2, 5, 10]"}"#);
    assert_eq!(got[1], r#"{"id": 1, "output": "7"}"#);
    assert!(
        got[2].contains(r#""kind": "omega""#) && got[2].contains(r#""id": 2"#),
        "{}",
        got[2]
    );
    assert_eq!(got[3], r#"{"id": 3, "output": "[1]"}"#);

    // Queue one more request and the shutdown on the same connection:
    // the request is answered before the server stops.
    writeln!(stream, r#"{{"fn": "sq1", "input": "[5]", "id": 4}}"#).unwrap();
    writeln!(stream, r#"{{"cmd": "shutdown"}}"#).unwrap();
    stream.flush().unwrap();
    let mut tail = String::new();
    reader.read_line(&mut tail).unwrap();
    assert_eq!(tail.trim(), r#"{"id": 4, "output": "[26]"}"#);
    tail.clear();
    reader.read_line(&mut tail).unwrap();
    assert_eq!(tail.trim(), r#"{"ok": "draining"}"#);
    drop(reader);
    drop(stream);
    serving.join().expect("accept loop exits after shutdown");
    assert_eq!(
        server
            .submit("sq1", None, "[1]".into(), Box::new(|_| {}))
            .unwrap_err()
            .kind(),
        "shutdown"
    );
}
