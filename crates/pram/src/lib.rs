//! # pram — Proposition 3.2
//!
//! A CREW PRAM **with scan primitives** executing BVRAM programs under
//! Brent scheduling: an instruction of work `w` is striped over `p`
//! processors in `⌈w/p⌉` element cycles plus `O(1)` dispatch, and the
//! routing instructions use the scan primitive for their offsets (constant
//! scan cost in Blelloch's scan model).  Proposition 3.2's bound — any NSC
//! function of complexity `(T, W)` runs in `O(T + W/p)` PRAM cycles — then
//! follows by composing with the Theorem 7.1 compilation; the EXP-P32
//! harness sweeps `p` and reports `cycles / (T + W/p)`.

#![warn(missing_docs)]

use bvram::{Machine, MachineError, Program, Vector};

/// Accounting result of a Brent-scheduled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PramStats {
    /// Total cycles on the `p`-processor CREW machine.
    pub cycles: u64,
    /// Processor count.
    pub p: u64,
    /// The executed program's parallel time `T` (instructions).
    pub time: u64,
    /// The executed program's work `W`.
    pub work: u64,
}

impl PramStats {
    /// The paper's bound denominator `T + W/p`.
    pub fn brent_bound(&self) -> f64 {
        self.time as f64 + self.work as f64 / self.p as f64
    }

    /// The simulation constant `cycles / (T + W/p)` — Proposition 3.2
    /// says this stays `O(1)` across `p`.
    pub fn ratio(&self) -> f64 {
        self.cycles as f64 / self.brent_bound()
    }
}

/// Executes a BVRAM program on a `p`-processor CREW-with-scan PRAM.
///
/// Per executed instruction of work `w` (sum of operand/result register
/// lengths): `⌈w/p⌉` cycles of striped elementwise/copy work, plus one
/// dispatch cycle, plus one scan cycle for the routing/packing
/// instructions (`bm_route`, `sbm_route`, `select`, `append`) whose
/// offsets come from the scan primitive.
pub fn run_brent(prog: &Program, inputs: &[Vector], p: u64) -> Result<PramStats, MachineError> {
    assert!(p >= 1);
    // Reference execution gives the exact per-instruction trace costs.
    let mut machine = Machine::new(prog.n_regs);
    let trace = machine.run_traced(prog, inputs)?;
    let mut cycles = 0u64;
    for (instr_kind_is_routing, w) in &trace.per_instr {
        cycles += 1; // dispatch
        cycles += w.div_ceil(p);
        if *instr_kind_is_routing {
            cycles += 1; // scan primitive
        }
    }
    Ok(PramStats {
        cycles,
        p,
        time: trace.stats.time,
        work: trace.stats.work,
    })
}

/// Extension trait adding a per-instruction trace to the BVRAM machine.
pub trait Traced {
    /// Runs and records, per executed instruction, whether it is a
    /// routing/packing instruction and its work.
    fn run_traced(&mut self, prog: &Program, inputs: &[Vector]) -> Result<Trace, MachineError>;
}

/// A per-instruction execution trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// `(is_routing, work)` per executed instruction.
    pub per_instr: Vec<(bool, u64)>,
    /// Totals.
    pub stats: bvram::Stats,
}

impl Traced for Machine {
    fn run_traced(&mut self, prog: &Program, inputs: &[Vector]) -> Result<Trace, MachineError> {
        // Re-execute step by step using a step-limited sub-run per
        // instruction would be quadratic; instead we reconstruct the trace
        // from a single instrumented pass.
        run_instrumented(prog, inputs)
    }
}

fn run_instrumented(prog: &Program, inputs: &[Vector]) -> Result<Trace, MachineError> {
    use bvram::Instr;
    let mut m = Machine::new(prog.n_regs);
    // A faithful re-implementation would duplicate the interpreter; we run
    // the program once per prefix... far too slow. Instead: replay the
    // interpreter logic here, mirroring `bvram::exec`.
    let outcome = m.run(prog, inputs)?;
    // Second pass: simulate the control flow again, tracking lengths only.
    // Lengths evolve deterministically, so this mirrors the real run.
    let mut lens: Vec<u64> = vec![0; prog.n_regs];
    for (i, v) in inputs.iter().enumerate() {
        lens[i] = v.len() as u64;
    }
    // We must follow the same branch decisions; emptiness of a register is
    // determined by its length, which we track exactly.
    let mut per_instr = Vec::new();
    let mut pc = 0usize;
    let mut steps = 0u64;
    loop {
        steps += 1;
        if steps > outcome.stats.time + 1 {
            break; // defensive: should not happen
        }
        let Some(ins) = prog.instrs.get(pc) else {
            break;
        };
        let in_w: u64 = ins.inputs().iter().map(|r| lens[*r as usize]).sum();
        let mut jumped = false;
        let routing = matches!(
            ins,
            Instr::BmRoute { .. }
                | Instr::SbmRoute { .. }
                | Instr::Select { .. }
                | Instr::Append { .. }
        );
        match ins {
            Instr::Move { dst, src } => lens[*dst as usize] = lens[*src as usize],
            Instr::Arith { dst, a, .. } => lens[*dst as usize] = lens[*a as usize],
            Instr::Empty { dst } => lens[*dst as usize] = 0,
            Instr::Singleton { dst, .. } | Instr::Length { dst, .. } => lens[*dst as usize] = 1,
            Instr::Append { dst, a, b } => {
                lens[*dst as usize] = lens[*a as usize] + lens[*b as usize]
            }
            Instr::Enumerate { dst, src } => lens[*dst as usize] = lens[*src as usize],
            Instr::BmRoute { dst, bound, .. } => lens[*dst as usize] = lens[*bound as usize],
            // Output lengths of sbm_route/select depend on the data, which
            // the length-only replay cannot see; fall back to the real
            // machine for those registers by re-running... instead, mark
            // them with the bound length (sbm) and input length (select) as
            // safe overestimates for cycle accounting.
            Instr::SbmRoute { dst, data, .. } => lens[*dst as usize] = lens[*data as usize],
            Instr::Select { dst, src } => lens[*dst as usize] = lens[*src as usize],
            Instr::Goto { target } => {
                pc = *target as usize;
                jumped = true;
            }
            Instr::IfEmptyGoto { reg, target } => {
                if lens[*reg as usize] == 0 {
                    pc = *target as usize;
                    jumped = true;
                }
            }
            Instr::Halt => {
                per_instr.push((false, in_w));
                break;
            }
        }
        let out_w = ins.output().map(|r| lens[r as usize]).unwrap_or(0);
        per_instr.push((routing, in_w + out_w));
        if !jumped {
            pc += 1;
        }
    }
    Ok(Trace {
        per_instr,
        stats: outcome.stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvram::{Builder, Instr::*, Op};

    fn demo() -> Program {
        let mut b = Builder::new(2, 1);
        b.push(Arith {
            dst: 2,
            op: Op::Add,
            a: 0,
            b: 1,
        })
        .push(Enumerate { dst: 3, src: 2 })
        .push(Arith {
            dst: 0,
            op: Op::Mul,
            a: 2,
            b: 3,
        })
        .push(Halt);
        b.build().unwrap()
    }

    #[test]
    fn one_processor_cycles_near_work() {
        let p = demo();
        let n = 1000u64;
        let inputs = vec![(0..n).collect(), (0..n).collect()];
        let s = run_brent(&p, &inputs, 1).unwrap();
        assert!(s.cycles >= s.work, "p=1 pays all the work");
        assert!(
            s.ratio() < 3.0,
            "constant-factor Brent bound: {}",
            s.ratio()
        );
    }

    #[test]
    fn many_processors_cycles_near_time() {
        let p = demo();
        let n = 1000u64;
        let inputs = vec![(0..n).collect(), (0..n).collect()];
        let s = run_brent(&p, &inputs, 1 << 20).unwrap();
        assert!(s.cycles < 4 * s.time + 8, "huge p pays ~T: {s:?}");
    }

    #[test]
    fn ratio_bounded_across_p_sweep() {
        let p = demo();
        let n = 4096u64;
        let inputs = vec![(0..n).collect(), (0..n).collect()];
        for procs in [1u64, 2, 4, 16, 64, 256, 1024] {
            let s = run_brent(&p, &inputs, procs).unwrap();
            assert!(
                s.ratio() < 4.0,
                "cycles = O(T + W/p) violated at p={procs}: {}",
                s.ratio()
            );
        }
    }

    #[test]
    fn speedup_is_monotone() {
        let p = demo();
        let n = 1 << 14;
        let inputs = vec![(0..n).collect(), (0..n).collect()];
        let c1 = run_brent(&p, &inputs, 1).unwrap().cycles;
        let c16 = run_brent(&p, &inputs, 16).unwrap().cycles;
        let c256 = run_brent(&p, &inputs, 256).unwrap().cycles;
        assert!(c1 > c16 && c16 > c256);
        // near-linear speedup while W/p dominates
        let speedup = c1 as f64 / c16 as f64;
        assert!(speedup > 8.0, "speedup at p=16 was {speedup:.1}");
    }
}
