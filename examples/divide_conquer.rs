//! The section-4 recursion schemas g / h / k as map-recursive programs,
//! including the k-schema the paper highlights as *not contained* in
//! Blelloch's sense yet compilable here, and the ε-staged translation on
//! an unbalanced tree.
//!
//! Run with: `cargo run --release --example divide_conquer`

use nsc::algorithms::schemas;
use nsc::core::eval::apply_func;
use nsc::core::maprec::direct::eval_maprec;
use nsc::core::maprec::fixtures;
use nsc::core::maprec::staged::translate_staged;
use nsc::core::maprec::translate::translate;
use nsc::core::value::Value;

fn main() {
    // g: quicksort
    let qs = schemas::quicksort_def();
    let xs: Vec<u64> = (0..32u64).map(|i| (i * 17 + 5) % 50).collect();
    let out = eval_maprec(&qs, Value::nat_seq(xs.clone())).unwrap();
    let mut want = xs;
    want.sort();
    assert_eq!(out.value.as_nat_seq().unwrap(), want);
    println!("g (quicksort): ok, {}", out.cost);

    // h: tail recursion
    let h = schemas::log_steps_def();
    let out = eval_maprec(&h, Value::nat(4096)).unwrap();
    println!("h (log-steps): log2(4096) = {}", out.value);

    // k: 2-or-3-way divide (not contained, still map-recursive)
    let k = schemas::uneven_sum_def();
    let out = eval_maprec(&k, fixtures::range(0, 30)).unwrap();
    println!("k (uneven divide): sum 0..30 = {}", out.value);

    // Theorem 4.2 on the unbalanced staircase: plain vs ε-staged work.
    let def = fixtures::staircase();
    let n = 128;
    let arg = fixtures::range(0, n);
    let w_plain = apply_func(&translate(&def), arg.clone()).unwrap().1.work;
    let w_k2 = apply_func(&translate_staged(&def, 2), arg.clone())
        .unwrap()
        .1
        .work;
    let w_k3 = apply_func(&translate_staged(&def, 3), arg).unwrap().1.work;
    println!("staircase n={n}: W' plain = {w_plain}, staged k=2: {w_k2}, k=3: {w_k3}");
}
