//! Database-style queries over nested sequences — the application domain
//! the paper motivates ("We have in mind applications to databases").
//!
//! A tiny orders database lives as a nested sequence
//! `[(customer_id, [amount])]`; the queries below are plain NSC programs
//! with O(1)/O(log) parallel time.
//!
//! Run with: `cargo run --example nested_queries`

use nsc::core::ast::*;
use nsc::core::eval::apply_func;
use nsc::core::stdlib;
use nsc::core::value::Value;
use nsc::core::Type;

fn db() -> Value {
    let row = |id: u64, orders: &[u64]| {
        Value::pair(Value::nat(id), Value::nat_seq(orders.iter().copied()))
    };
    Value::seq(vec![
        row(1, &[120, 40]),
        row(2, &[]),
        row(3, &[75, 75, 75]),
        row(4, &[9]),
    ])
}

fn main() {
    let row_ty = Type::prod(Type::Nat, Type::seq(Type::Nat));
    let dom = Type::seq(row_ty.clone());

    // Π: customer ids (a database projection, one parallel step).
    let ids = stdlib::basic::pi1();
    let (v, c) = apply_func(&ids, db()).unwrap();
    println!("ids:           {v}   ({c})");

    // Total spend per customer: map over rows, tree-sum the inner orders.
    let totals = map(lam(
        "r",
        pair(fst(var("r")), stdlib::numeric::sum_seq(snd(var("r")))),
    ));
    let (v, c) = apply_func(&totals, db()).unwrap();
    println!("totals:        {v}   ({c})");

    // Customers with at least one order >= 100 (nested filter + test).
    let big_spender = lam(
        "r",
        lt(
            nat(0),
            length(app(
                stdlib::basic::filter(lam("o", le(nat(100), var("o"))), &Type::Nat),
                snd(var("r")),
            )),
        ),
    );
    let query = stdlib::basic::filter(big_spender, &row_ty);
    let (v, c) = apply_func(&query, db()).unwrap();
    println!("big spenders:  {v}   ({c})");

    // All order amounts flattened (unnesting), then sorted.
    let amounts = lam("d", flatten(app(stdlib::basic::pi2(), var("d"))));
    let (v, _) = apply_func(&amounts, db()).unwrap();
    println!("all amounts:   {v}");
    let sorted = nsc::algorithms::valiant::rank_sort({
        let vs = v.as_nat_seq().unwrap();
        vs.iter()
            .fold(empty(Type::Nat), |acc, &n| append(acc, singleton(nat(n))))
    });
    let (v, _) = nsc::core::eval::eval_term(&sorted).unwrap();
    println!("sorted:        {v}");
    let _ = dom;
}
