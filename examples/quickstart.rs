//! Quickstart: write an NSC program, read its machine-independent costs,
//! compile it down the paper's whole pipeline, and run it on the BVRAM.
//!
//! Run with: `cargo run --example quickstart`

use nsc::core::ast::*;
use nsc::core::tyck::check_closed;
use nsc::core::value::Value;
use nsc::core::Type;

fn main() {
    // NSC's only parallel construct is map; while replaces recursion.
    // f(xs) = map (λx. x² + 1) xs
    let f = map(lam("x", add(mul(var("x"), var("x")), nat(1))));
    let dom = Type::seq(Type::Nat);
    println!("program:  {f}");
    println!("type:     {dom} -> {}", check_closed(&f, &dom).unwrap());

    // Evaluate under the Definition 3.1 cost semantics: parallel time T is
    // independent of the sequence length, work W is linear.
    for n in [8u64, 64, 512] {
        let (out, cost) = nsc::core::eval::apply_func(&f, Value::nat_seq(0..n)).unwrap();
        println!(
            "n = {n:4}: {cost}   (first outputs: {:?})",
            &out.as_nat_seq().unwrap()[..4.min(n as usize)]
        );
    }

    // Theorem 7.1: compile NSC -> NSA -> SA -> BVRAM and run on the machine.
    let compiled = nsc::compile::compile_nsc(&f, &dom).unwrap();
    println!(
        "\ncompiled to a BVRAM with {} instructions over {} registers",
        compiled.program.instrs.len(),
        compiled.program.n_regs
    );
    let (out, machine_cost) =
        nsc::compile::run_compiled(&compiled, &Value::nat_seq(0..16)).unwrap();
    println!("machine output: {out}");
    println!("machine cost:   {machine_cost}");
}
