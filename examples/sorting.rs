//! Valiant's O(log n log log n) mergesort (Figures 1-3) end to end:
//! the map-recursive definition, its direct cost, and the Theorem 4.2
//! translation into pure NSC while-loops.
//!
//! Run with: `cargo run --release --example sorting`

use nsc::algorithms::valiant;
use nsc::core::eval::apply_func;
use nsc::core::maprec::direct::eval_maprec;
use nsc::core::maprec::translate::translate;
use nsc::core::value::Value;

fn main() {
    let def = valiant::mergesort_def();
    let xs: Vec<u64> = (0..64u64).map(|i| (i * 2654435761) % 997).collect();
    let arg = Value::nat_seq(xs.clone());

    // Reference semantics of the recursive program.
    let out = eval_maprec(&def, arg.clone()).unwrap();
    let mut want = xs.clone();
    want.sort();
    assert_eq!(out.value.as_nat_seq().unwrap(), want);
    println!("mergesort(n={}) sorted correctly", xs.len());
    println!("source cost: {}", out.cost);
    println!(
        "divide-and-conquer tree: {} nodes, depth {}, {} leaf levels",
        out.stats.nodes, out.stats.depth, out.stats.leaf_levels
    );

    // Theorem 4.2: the same algorithm as a recursion-free NSC program.
    let pure_nsc = translate(&def);
    let (v, cost) = apply_func(&pure_nsc, arg).unwrap();
    assert_eq!(v.as_nat_seq().unwrap(), want);
    println!("translated (while-based) cost: {cost}");

    // Shape check: quadrupling n moves T only a little (log n log log n).
    for n in [64u64, 256] {
        let xs: Vec<u64> = (0..n).map(|i| (i * 40503) % 1009).collect();
        let out = eval_maprec(&def, Value::nat_seq(xs)).unwrap();
        println!(
            "n = {n:4}: T = {:6}  W = {:9}",
            out.cost.time, out.cost.work
        );
    }
}
