//! `nsc` — the NSC surface-language driver.
//!
//! Parses a `.nsc` module (see `nsc_core::parse`), type checks it, and
//! either evaluates it under the Definition 3.1 cost semantics or compiles
//! it through the full Theorem 7.1 pipeline and runs it on the BVRAM
//! (sequential and/or rayon-parallel backend), printing the source `T`/`W`
//! next to the machine `T'`/`W'`.
//!
//! ```text
//! nsc check   file.nsc                 parse + type check, print signatures
//! nsc run     file.nsc [options]       evaluate + compile + run, cost table
//! nsc compile file.nsc [options]       print the compiled BVRAM program
//! nsc bench   file.nsc [options]       wall-clock the batch runtime
//! nsc serve   file.nsc [options]       micro-batching request server
//! ```
//!
//! `nsc run --batch N` additionally serves the input `N` times through
//! the batched runtime (`nsc::runtime`), cross-checking every batched
//! result against the single-run answer; `nsc bench` measures the
//! sequential / pack / lanes disciplines and can write the machine-
//! readable `BENCH_batch.json` records with `--json`; `nsc serve` exposes
//! the module's functions over newline-delimited JSON (TCP via `--addr`,
//! or a pipe via `--stdin`) through the adaptive micro-batching server in
//! `nsc::serve` — see the README's "Serving" section for the protocol.

use nsc::compile::{compile_nsc_verified, run_compiled_on, Backend, OptLevel, VerifyLevel};
use nsc::core::eval::Evaluator;
use nsc::core::parse::{parse_module, parse_value, Module};
use nsc::core::{Cost, EvalError};
use nsc::runtime::{measure_batches, BatchRunner, CompiledCache};
use nsc::serve::{front, ServeConfig, Server};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE: &str = "\
nsc — surface-language driver for the Suciu & Tannen compilation pipeline

USAGE:
    nsc check   <file.nsc> [OPTIONS]   parse and type check, print signatures
                                       (lint warnings go to stderr)
    nsc lint    <file.nsc>             print lint warnings (unused definitions,
                                       shadowed binders, unreachable case arms,
                                       non-compilable recursion, superlinear
                                       compiled work)
    nsc run     <file.nsc> [OPTIONS]   evaluate, compile, run; print T/W vs T'/W'
    nsc compile <file.nsc> [OPTIONS]   print the compiled BVRAM program
    nsc cost    <file.nsc> [OPTIONS]   print each definition's symbolic cost
                                       bounds: T'/W' as polynomials over the
                                       input register lengths (or ⊤ with the
                                       program counter and reason)
    nsc bench   <file.nsc> [OPTIONS]   wall-clock batched execution (the
                                       sequential baseline vs pack vs lanes)
    nsc serve   <file.nsc> [OPTIONS]   adaptive micro-batching server speaking
                                       newline-delimited JSON (requests like
                                       {\"fn\": \"main\", \"input\": \"[1, 2]\"})

OPTIONS:
    --entry <name>      entry function (default: `main`, or the sole definition)
    --input <value>     argument, e.g. '[1, 2, 3]' (default: the file's `input`)
    --opt <0|1>         BVRAM optimization level (default: 1)
    --backend <b>       seq | par | both — which machine(s) run the compiled
                        code (default: both)
    --verify            (check/run/compile) run the static BVRAM verifier as
                        translation validation: every optimizer pass is
                        checked and the first invariant-breaking pass is
                        reported by name (also on via NSC_VERIFY=1)
    --source-only       (run) skip compilation, evaluate only
    --fuel <n>          abort source evaluation after n rule applications
    --batch <n>         (run) also serve the input n times through the batch
                        runtime; (bench) measure only batch size n instead of
                        the default sweep 1, 8, 64
    --json <path>       (bench) also write the records as BENCH_batch.json
    --explain           (bench) print the cost model's mode choice per batch
                        size: predicted per-request W' (the symbolic bound at
                        the actual input lengths) next to the measured W'
    --explain-fusion    (compile) print what source-level map fusion did to
                        the entry: how many map∘map stages collapsed and,
                        for each seam that did not, why it was blocked
                        (fusion applies at --opt 1; --opt 0 compiles the
                        program exactly as written)
    --addr <host:port>  (serve) listen for TCP connections; a client line
                        {\"cmd\": \"shutdown\"} drains and stops the server
    --stdin             (serve) read requests from stdin, answer on stdout,
                        drain at EOF (pipe-driven use)
    --max-batch <n>     (serve) flush a batch at n requests (default 32);
                        1 disables batching
    --max-wait-ms <n>   (serve) flush when the oldest queued request is n
                        milliseconds old (default 2); 0 disables waiting
                        (backlogged requests still batch up to --max-batch)
    --queue-cap <n>     (serve) per-shard admission queue capacity
                        (default 1024); a full queue answers
                        {\"error\": ..., \"kind\": \"overloaded\"}
";

struct Opts {
    cmd: String,
    file: String,
    entry: Option<String>,
    input: Option<String>,
    opt: OptLevel,
    backends: Vec<Backend>,
    source_only: bool,
    fuel: Option<u64>,
    batch: Option<usize>,
    json: Option<String>,
    addr: Option<String>,
    stdin: bool,
    max_batch: usize,
    max_wait_ms: u64,
    queue_cap: usize,
    verify: VerifyLevel,
    explain: bool,
    explain_fusion: bool,
}

fn parse_args(mut args: Vec<String>) -> Result<Opts, String> {
    if args.len() < 2 {
        return Err("expected a command and a file".into());
    }
    let cmd = args.remove(0);
    if !["check", "lint", "run", "compile", "cost", "bench", "serve"].contains(&cmd.as_str()) {
        return Err(format!("unknown command `{cmd}`"));
    }
    let file = args.remove(0);
    let mut opts = Opts {
        cmd,
        file,
        entry: None,
        input: None,
        opt: OptLevel::default(),
        backends: vec![Backend::Seq, Backend::Par],
        source_only: false,
        fuel: None,
        batch: None,
        json: None,
        addr: None,
        stdin: false,
        max_batch: 32,
        max_wait_ms: 2,
        queue_cap: 1024,
        verify: VerifyLevel::from_env(),
        explain: false,
        explain_fusion: false,
    };
    // Silently dropping a flag hides typos; each subcommand accepts only
    // the options it actually reads.
    let allowed: &[&str] = match opts.cmd.as_str() {
        "check" => &["--verify"],
        "lint" => &[],
        "compile" => &["--entry", "--opt", "--verify", "--explain-fusion"],
        "cost" => &["--entry", "--opt"],
        "bench" => &[
            "--entry",
            "--input",
            "--opt",
            "--backend",
            "--batch",
            "--json",
            "--explain",
        ],
        "serve" => &[
            "--addr",
            "--stdin",
            "--opt",
            "--backend",
            "--max-batch",
            "--max-wait-ms",
            "--queue-cap",
        ],
        _ => &[
            "--entry",
            "--input",
            "--opt",
            "--backend",
            "--source-only",
            "--fuel",
            "--batch",
            "--verify",
        ],
    };
    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        if flag.starts_with("--") && !allowed.contains(&flag.as_str()) {
            return Err(format!("`nsc {}` does not accept `{flag}`", opts.cmd));
        }
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--entry" => opts.entry = Some(val("--entry")?),
            "--input" => opts.input = Some(val("--input")?),
            "--opt" => {
                opts.opt = match val("--opt")?.as_str() {
                    "0" => OptLevel::O0,
                    "1" => OptLevel::O1,
                    other => return Err(format!("--opt expects 0 or 1, got `{other}`")),
                }
            }
            "--backend" => {
                opts.backends = match val("--backend")?.as_str() {
                    "seq" => vec![Backend::Seq],
                    "par" => vec![Backend::Par],
                    "both" => vec![Backend::Seq, Backend::Par],
                    other => return Err(format!("--backend expects seq|par|both, got `{other}`")),
                }
            }
            "--source-only" => opts.source_only = true,
            "--verify" => opts.verify = VerifyLevel::Full,
            "--fuel" => {
                opts.fuel = Some(
                    val("--fuel")?
                        .parse()
                        .map_err(|_| "--fuel expects a number".to_string())?,
                )
            }
            "--batch" => {
                let n: usize = val("--batch")?
                    .parse()
                    .map_err(|_| "--batch expects a number".to_string())?;
                if n == 0 {
                    return Err("--batch expects a positive number".into());
                }
                opts.batch = Some(n);
            }
            "--json" => opts.json = Some(val("--json")?),
            "--explain" => opts.explain = true,
            "--explain-fusion" => opts.explain_fusion = true,
            "--addr" => opts.addr = Some(val("--addr")?),
            "--stdin" => opts.stdin = true,
            "--max-batch" => {
                opts.max_batch = val("--max-batch")?
                    .parse()
                    .map_err(|_| "--max-batch expects a number".to_string())?;
                if opts.max_batch == 0 {
                    return Err("--max-batch expects a positive number".into());
                }
            }
            "--max-wait-ms" => {
                opts.max_wait_ms = val("--max-wait-ms")?
                    .parse()
                    .map_err(|_| "--max-wait-ms expects a number".to_string())?;
                // An absurd wait would overflow `Instant + Duration` in
                // the batcher's deadline arithmetic; an hour is already
                // far past any sensible batching latency ceiling.
                if opts.max_wait_ms > 3_600_000 {
                    return Err("--max-wait-ms expects at most 3600000 (one hour)".into());
                }
            }
            "--queue-cap" => {
                opts.queue_cap = val("--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap expects a number".to_string())?;
                if opts.queue_cap == 0 {
                    return Err("--queue-cap expects a positive number".into());
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    // The evaluator and the NSC -> NSA translation recurse with program
    // depth (and with `--input`-controlled recursion depth for recursive
    // definitions), so the real work runs on a thread with a much larger
    // stack than main's: deep-but-legitimate programs finish instead of
    // aborting.  For untrusted recursive input, pair with `--fuel`.
    const WORKER_STACK: usize = 512 * 1024 * 1024;
    let worker = std::thread::Builder::new()
        .name("nsc-driver".into())
        .stack_size(WORKER_STACK)
        .spawn(move || drive(&opts))
        .expect("spawn driver thread");
    match worker.join() {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(_) => {
            eprintln!("error: internal panic while driving the pipeline");
            ExitCode::FAILURE
        }
    }
}

fn drive(opts: &Opts) -> Result<(), String> {
    let src = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read `{}`: {e}", opts.file))?;
    let module = parse_module(&src).map_err(|e| format!("{}: {e}", opts.file))?;
    if module.defs.is_empty() {
        return Err(format!("{}: no definitions", opts.file));
    }
    module.check().map_err(|e| format!("{}: {e}", opts.file))?;

    match opts.cmd.as_str() {
        "check" => cmd_check(opts, &module),
        "lint" => {
            // Warnings on stdout (they are this command's output), one
            // per line, deterministic order; findings do not fail the
            // command — `check` is the pass/fail gate.
            use std::io::Write;
            let mut out = std::io::stdout().lock();
            for l in nsc::core::lint_module(&module) {
                let _ = writeln!(out, "{l}");
            }
            for l in superlinear_lints(&module) {
                let _ = writeln!(out, "{l}");
            }
            Ok(())
        }
        "compile" => cmd_compile(opts, &module),
        "cost" => cmd_cost(opts, &module),
        "run" => cmd_run(opts, &module),
        "bench" => cmd_bench(opts, &module),
        "serve" => cmd_serve(opts, &module),
        _ => unreachable!(),
    }
}

fn entry_name(opts: &Opts, module: &Module) -> Result<String, String> {
    if let Some(e) = &opts.entry {
        return Ok(e.clone());
    }
    if module.get("main").is_some() {
        return Ok("main".into());
    }
    if module.defs.len() == 1 {
        return Ok(module.defs[0].name.to_string());
    }
    Err("no `main` and several definitions; pick one with --entry".into())
}

fn cmd_check(opts: &Opts, module: &Module) -> Result<(), String> {
    // One line per definition on stdout; lint warnings go to stderr so
    // scripted consumers of the signature listing never see them.
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    for d in &module.defs {
        let _ = writeln!(out, "fn {} : {} -> {}", d.name, d.dom, d.cod);
    }
    drop(out);
    for l in nsc::core::lint_module(module) {
        eprintln!("{l}");
    }
    if opts.verify.enabled() {
        // Compile every pure-NSC definition under per-pass translation
        // validation; a pass that breaks a verifier invariant fails the
        // check.  Recursive definitions have no compiled form to verify.
        for d in &module.defs {
            let pure = match module.inlined(&d.name) {
                Ok(p) => p,
                Err(nsc::core::parse::ModuleError::Recursive(_)) => continue,
                Err(e) => return Err(e.to_string()),
            };
            compile_nsc_verified(&pure, &d.dom, opts.opt, VerifyLevel::Full)
                .map_err(|e| format!("verifying `{}`: {e}", d.name))?;
        }
    }
    Ok(())
}

fn cmd_compile(opts: &Opts, module: &Module) -> Result<(), String> {
    let entry = entry_name(opts, module)?;
    let def = module
        .get(&entry)
        .ok_or_else(|| format!("no definition named `{entry}`"))?;
    let pure = module.inlined(&entry).map_err(|e| e.to_string())?;
    let compiled = compile_nsc_verified(&pure, &def.dom, opts.opt, opts.verify)
        .map_err(|e| format!("compiling `{entry}`: {e}"))?;
    // Listings are long; tolerate a closed pipe (`nsc compile … | head`).
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    let _ = writeln!(
        out,
        "-- {} : {} -> {} (opt {:?})",
        entry, def.dom, def.cod, opts.opt
    );
    // `--explain-fusion`: what the source-level rewrite did to this
    // entry.  `fuse_func` is re-run here (it is pure and cheap) so the
    // report is available even at --opt 0, where compilation skips it.
    if opts.explain_fusion {
        let fused = nsc::algebra::fuse::fuse_func(&pure);
        let _ = writeln!(
            out,
            "-- fusion: {} map∘map stage(s) collapsed",
            fused.stages
        );
        for reason in &fused.blocked {
            let _ = writeln!(out, "-- fusion blocked: {reason}");
        }
        if fused.stages == 0 && fused.blocked.is_empty() {
            let _ = writeln!(out, "-- fusion: no map chains in `{entry}`");
        }
        if opts.opt == OptLevel::O0 {
            let _ = writeln!(
                out,
                "-- fusion: not applied below (--opt 0 compiles the program as written)"
            );
        }
    }
    let _ = write!(out, "{}", compiled.program);
    Ok(())
}

/// The `superlinear-work` lint: compile each pure definition at the
/// default level and flag it when the symbolic work bound is ω(n) in any
/// input register length — or `⊤`, which is worse.  A serving system
/// that registers such a definition gets per-request cost growing faster
/// than its input, so the warning points at exactly the definitions the
/// batch runner's cost model will steer away from packing.
fn superlinear_lints(module: &Module) -> Vec<nsc::core::Lint> {
    let mut lints = Vec::new();
    for d in &module.defs {
        // Recursive (non-inlinable) definitions are already flagged by
        // the syntactic linter; anything else that fails to compile is
        // not this lint's business either.
        let Ok(pure) = module.inlined(&d.name) else {
            continue;
        };
        let Ok(compiled) =
            compile_nsc_verified(&pure, &d.dom, OptLevel::default(), VerifyLevel::Off)
        else {
            continue;
        };
        let report = nsc::machine::cost_program(&compiled.program);
        let message = match &report.work {
            w @ nsc::machine::CostBound::Top { .. } => {
                format!("compiled work bound is unbounded: W' <= {w}")
            }
            nsc::machine::CostBound::Poly(p) => {
                let syms: Vec<String> = (0..report.n_syms)
                    .filter(|&i| p.superlinear_in(i))
                    .map(|i| format!("n{i}"))
                    .collect();
                if syms.is_empty() {
                    continue;
                }
                format!(
                    "compiled work grows superlinearly in input length {}: W' <= {p}",
                    syms.join(", ")
                )
            }
        };
        lints.push(nsc::core::Lint {
            code: "superlinear-work",
            def: d.name.to_string(),
            message,
        });
    }
    lints
}

fn cmd_cost(opts: &Opts, module: &Module) -> Result<(), String> {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    let only = opts.entry.as_deref();
    if let Some(e) = only {
        if module.get(e).is_none() {
            return Err(format!("no definition named `{e}`"));
        }
    }
    for d in &module.defs {
        if only.is_some_and(|e| e != d.name.as_ref()) {
            continue;
        }
        let _ = writeln!(
            out,
            "fn {} : {} -> {} (opt {:?})",
            d.name, d.dom, d.cod, opts.opt
        );
        let pure = match module.inlined(&d.name) {
            Ok(p) => p,
            Err(e @ nsc::core::parse::ModuleError::Recursive(_)) => {
                let _ = writeln!(out, "  not compiled: {e}");
                continue;
            }
            Err(e) => return Err(e.to_string()),
        };
        let compiled = compile_nsc_verified(&pure, &d.dom, opts.opt, VerifyLevel::Off)
            .map_err(|e| format!("compiling `{}`: {e}", d.name))?;
        let report = nsc::machine::cost_program(&compiled.program);
        for line in report.to_string().lines() {
            let _ = writeln!(out, "  {line}");
        }
    }
    Ok(())
}

fn cmd_run(opts: &Opts, module: &Module) -> Result<(), String> {
    let entry = entry_name(opts, module)?;
    let def = module
        .get(&entry)
        .ok_or_else(|| format!("no definition named `{entry}`"))?;
    let input = match &opts.input {
        Some(src) => parse_value(src).map_err(|e| format!("--input: {e}"))?,
        None => module.input.clone().ok_or_else(|| {
            "no input: pass --input '<value>' or add an `input <value>` directive".to_string()
        })?,
    };
    if !def.dom.admits(&input) {
        return Err(format!(
            "input {input} does not inhabit `{entry}`'s domain {}",
            def.dom
        ));
    }

    // Source semantics (Definition 3.1 costs), with named definitions
    // resolved through the function table.
    let table = module.func_table();
    let mut ev = Evaluator::new(&table);
    if let Some(fuel) = opts.fuel {
        ev = ev.with_fuel(fuel);
    }
    let (value, src_cost) = ev
        .apply_closed(&def.func, input.clone())
        .map_err(|e| format!("evaluating `{entry}`: {e}"))?;
    // Result values can be huge; tolerate a closed pipe (`nsc run … | head`)
    // like cmd_compile does.
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    let _ = writeln!(out, "{entry} : {} -> {}", def.dom, def.cod);
    let _ = writeln!(out, "input  = {input}");
    let _ = writeln!(out, "result = {value}");
    let mut rows: Vec<(String, Cost)> = vec![("source (Def 3.1)".into(), src_cost)];

    if !opts.source_only {
        match module.inlined(&entry) {
            // Recursive entries still evaluate; they only skip the
            // (pure-NSC) compiler.  Every *other* inlining failure is a
            // hard error — exiting 0 with a note would let a program that
            // stopped compiling sail through scripts and CI.
            Err(e @ nsc::core::parse::ModuleError::Recursive(_)) => {
                let _ = writeln!(out, "note: not compiled: {e}");
            }
            Err(e) => return Err(e.to_string()),
            Ok(pure) => {
                let compiled = compile_nsc_verified(&pure, &def.dom, opts.opt, opts.verify)
                    .map_err(|e| format!("compiling `{entry}`: {e}"))?;
                for &backend in &opts.backends {
                    let (got, cost) = match run_compiled_on(&compiled, &input, backend) {
                        Ok(x) => x,
                        Err(EvalError::MachineFault(what)) => {
                            return Err(format!("bvram/{}: compiler bug: {what}", backend.name()))
                        }
                        Err(e) => return Err(format!("bvram/{}: {e}", backend.name())),
                    };
                    if got != value {
                        return Err(format!(
                            "bvram/{} disagrees with the evaluator: {got} != {value}",
                            backend.name()
                        ));
                    }
                    rows.push((format!("bvram/{} (T'/W')", backend.name()), cost));
                }
                // Serve the input --batch times through the batched
                // runtime; every result must equal the single-run answer.
                if let Some(b) = opts.batch {
                    let cache = CompiledCache::new();
                    let inputs = vec![input.clone(); b];
                    for &backend in &opts.backends {
                        let runner =
                            BatchRunner::from_cache(&cache, &pure, &def.dom, opts.opt, backend)
                                .map_err(|e| format!("batch compile `{entry}`: {e}"))?;
                        let outcome = runner.run_batch(&inputs);
                        for (i, r) in outcome.results.iter().enumerate() {
                            match r {
                                Ok(v) if *v == value => {}
                                Ok(v) => {
                                    return Err(format!(
                                        "batch/{} request {i} disagrees: {v} != {value}",
                                        backend.name()
                                    ))
                                }
                                Err(e) => {
                                    return Err(format!(
                                        "batch/{} request {i}: {e}",
                                        backend.name()
                                    ))
                                }
                            }
                        }
                        rows.push((
                            format!(
                                "batch/{} B={b} {}{}",
                                backend.name(),
                                outcome.mode.name(),
                                if outcome.fused { " (fused)" } else { "" }
                            ),
                            outcome.cost,
                        ));
                    }
                }
            }
        }
    }

    let name_w = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let _ = writeln!(out, "{:name_w$}  {:>12}  {:>12}", "", "time", "work");
    for (name, c) in &rows {
        let _ = writeln!(out, "{name:name_w$}  {:>12}  {:>12}", c.time, c.work);
    }
    Ok(())
}

fn cmd_serve(opts: &Opts, module: &Module) -> Result<(), String> {
    if opts.addr.is_some() == opts.stdin {
        return Err("serve needs exactly one front end: --addr <host:port> or --stdin".into());
    }
    let cfg = ServeConfig {
        max_batch: opts.max_batch,
        max_wait: Duration::from_millis(opts.max_wait_ms),
        queue_cap: opts.queue_cap,
        opt: opts.opt,
        // `--backend seq|par` picks the default shard backend (requests
        // may override per call); the `both` default falls back to seq.
        backend: opts.backends.first().copied().unwrap_or(Backend::Seq),
        on_flush: None,
    };
    let mut server = Server::new(cfg);
    let skipped = server.register_module(module);
    for (name, why) in &skipped {
        eprintln!("note: not serving `{name}`: {why}");
    }
    if server.functions().is_empty() {
        return Err("no servable definitions (every definition was skipped)".into());
    }
    // Name the default backend in the banner: `--backend both` (also
    // the default) falls back to seq for serving, and that choice must
    // be visible, not silent.
    eprintln!(
        "serving {} on {} (backend {}, max_batch {}, max_wait {}ms, queue_cap {})",
        server.functions().join(", "),
        opts.addr.as_deref().unwrap_or("stdin"),
        server.config().backend.name(),
        opts.max_batch,
        opts.max_wait_ms,
        opts.queue_cap,
    );
    let server = Arc::new(server);
    if let Some(addr) = &opts.addr {
        let listener = std::net::TcpListener::bind(addr)
            .map_err(|e| format!("cannot listen on `{addr}`: {e}"))?;
        front::serve_tcp(&server, listener).map_err(|e| format!("serving `{addr}`: {e}"))
    } else {
        let stdin = std::io::stdin().lock();
        front::serve_lines(&server, stdin, std::io::stdout()).map_err(|e| format!("serving: {e}"))
    }
}

fn cmd_bench(opts: &Opts, module: &Module) -> Result<(), String> {
    let entry = entry_name(opts, module)?;
    let def = module
        .get(&entry)
        .ok_or_else(|| format!("no definition named `{entry}`"))?;
    let input = match &opts.input {
        Some(src) => parse_value(src).map_err(|e| format!("--input: {e}"))?,
        None => module.input.clone().ok_or_else(|| {
            "no input: pass --input '<value>' or add an `input <value>` directive".to_string()
        })?,
    };
    if !def.dom.admits(&input) {
        return Err(format!(
            "input {input} does not inhabit `{entry}`'s domain {}",
            def.dom
        ));
    }
    let pure = module.inlined(&entry).map_err(|e| e.to_string())?;
    let batches: Vec<usize> = opts.batch.map(|b| vec![b]).unwrap_or(vec![1, 8, 64]);
    let cache = CompiledCache::new();
    let mut records = Vec::new();
    // `--explain`: the cost model's decision per (backend, batch size) —
    // chosen mode plus the predicted per-request W' behind it.
    let mut plans = Vec::new();
    for &backend in &opts.backends {
        let runner = BatchRunner::from_cache(&cache, &pure, &def.dom, opts.opt, backend)
            .map_err(|e| format!("compiling `{entry}`: {e}"))?;
        records.extend(measure_batches(&entry, &runner, &input, &batches, 5));
        if opts.explain {
            let fused = runner.cached().batch.fused_stages;
            for &b in &batches {
                let inputs = vec![input.clone(); b];
                plans.push((backend.name(), b, runner.plan(&inputs), fused));
            }
        }
    }

    use std::io::Write;
    let mut out = std::io::stdout().lock();
    let _ = writeln!(
        out,
        "{:>8} {:>6} {:>12} {:>14} {:>12} {:>14} {:>9}",
        "backend", "B", "mode", "wall_ns", "T'", "W'", "speedup"
    );
    for r in &records {
        let _ = writeln!(
            out,
            "{:>8} {:>6} {:>12} {:>14} {:>12} {:>14} {:>8.2}x",
            r.backend, r.batch, r.mode, r.wall_ns, r.t_prime, r.w_prime, r.speedup_vs_sequential
        );
    }
    for (backend, b, plan, fused_stages) in &plans {
        let predicted = match plan.predicted_work {
            Some(w) => w.to_string(),
            None => "⊤ (size heuristic)".to_string(),
        };
        // The measured W' of the discipline the model chose, per request.
        let measured = records
            .iter()
            .find(|r| r.backend == *backend && r.batch == *b && r.mode == plan.mode.name())
            .map(|r| (r.w_prime / (*b).max(1) as u64).to_string())
            .unwrap_or_else(|| "?".to_string());
        let _ = writeln!(
            out,
            "explain {backend} B={b}: chose {} (predicted per-request W' {predicted}, \
             measured {measured}, fused_stages {fused_stages})",
            plan.mode.name()
        );
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, nsc::runtime::json_report(&records))
            .map_err(|e| format!("writing `{path}`: {e}"))?;
        let _ = writeln!(out, "wrote {} records to {path}", records.len());
    }
    Ok(())
}
