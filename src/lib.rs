//! # nsc — reproduction of *Efficient Compilation of High-Level Data
//! Parallel Algorithms* (Suciu & Tannen, 1994)
//!
//! This facade crate re-exports the whole system:
//!
//! * [`core`] — the NSC calculus: AST, type checker, the
//!   Definition 3.1 cost-instrumented evaluator, the section-3 standard
//!   library, the Theorem 4.2 map-recursion translation, and the surface
//!   syntax (`core::parse`, the inverse of the pretty-printer — see the
//!   `nsc` CLI in `src/bin/nsc.rs` for the `.nsc` file driver);
//! * [`algebra`] — NSA (Appendix C), the flat Sequence
//!   Algebra (Appendix D), the `SEQ` encoding and Map Lemma (Lemma 7.2),
//!   and the flattening translation (Proposition 7.4);
//! * [`compile`] — SA → BVRAM code generation
//!   (Proposition 7.5) and the full Theorem 7.1 pipeline;
//! * [`runtime`] — the serving layer: the compile-once
//!   program cache and the pack/lanes batch runner (see the README's
//!   "Serving and batching" section);
//! * [`serve`] — the adaptive micro-batching request server
//!   (`nsc serve`): bounded admission queues, dual-threshold batcher
//!   shards, per-shard metrics, and the newline-delimited JSON fronts;
//! * [`machine`] — the Bounded Vector Random Access Machine with
//!   sequential and rayon backends;
//! * [`net`] — the Proposition 2.1 butterfly-network bound;
//! * [`sched`] — the Proposition 3.2 CREW-with-scan Brent
//!   simulation;
//! * [`algorithms`] — Valiant's `O(log n log log n)`
//!   mergesort (Figures 1–3) and friends.
//!
//! See `README.md` for a tour and `EXPERIMENTS.md` for the paper-vs-
//! measured record.

pub use butterfly as net;
pub use bvram as machine;
pub use nsc_algebra as algebra;
pub use nsc_algorithms as algorithms;
pub use nsc_compile as compile;
pub use nsc_core as core;
pub use nsc_runtime as runtime;
pub use nsc_serve as serve;
pub use pram as sched;
