//! Shared fixtures for the integration-test binaries.

use nsc::core::ast as a;
use nsc::core::Func;

/// A small suite of closed NSC functions over [N] spanning map,
/// divide-and-conquer, and batched while — used by the end-to-end
/// differential tests and the cost-monotonicity properties.
pub fn suite() -> Vec<(&'static str, Func)> {
    vec![
        (
            "square+1",
            a::map(a::lam(
                "x",
                a::add(a::mul(a::var("x"), a::var("x")), a::nat(1)),
            )),
        ),
        (
            "running-sum",
            a::lam("x", nsc::core::stdlib::numeric::prefix_sum(a::var("x"))),
        ),
        (
            "tree-sum",
            a::lam("x", nsc::core::stdlib::numeric::sum_seq(a::var("x"))),
        ),
        (
            "halve-all",
            a::map(a::while_(
                a::lam("x", a::lt(a::nat(0), a::var("x"))),
                a::lam("x", a::rshift(a::var("x"), a::nat(1))),
            )),
        ),
    ]
}
