//! Shared fixtures for the integration-test binaries.
//!
//! Each test binary compiles this module independently and uses the
//! subset it needs, so unused helpers are expected, not dead code.
#![allow(dead_code)]

use nsc::core::ast as a;
use nsc::core::stdlib;
use nsc::core::types::Type;
use nsc::core::Func;

/// A small suite of closed NSC functions over [N] spanning map,
/// divide-and-conquer, and batched while — used by the end-to-end
/// differential tests and the cost-monotonicity properties.
pub fn suite() -> Vec<(&'static str, Func)> {
    vec![
        (
            "square+1",
            a::map(a::lam(
                "x",
                a::add(a::mul(a::var("x"), a::var("x")), a::nat(1)),
            )),
        ),
        (
            "running-sum",
            a::lam("x", nsc::core::stdlib::numeric::prefix_sum(a::var("x"))),
        ),
        (
            "tree-sum",
            a::lam("x", nsc::core::stdlib::numeric::sum_seq(a::var("x"))),
        ),
        (
            "halve-all",
            a::map(a::while_(
                a::lam("x", a::lt(a::nat(0), a::var("x"))),
                a::lam("x", a::rshift(a::var("x"), a::nat(1))),
            )),
        ),
    ]
}

/// Every runnable stdlib function with its domain — shared by the
/// static-verification suite (`tests/static_verify.rs`) and the
/// cost-soundness suite (`tests/cost_soundness.rs`), so "the stdlib
/// roster" means the same ASTs in both.
pub fn typed_suite() -> Vec<(&'static str, Func, Type)> {
    let nn = Type::prod(Type::Nat, Type::Nat);
    let seq_n = Type::seq(Type::Nat);
    let gt0 = a::lam("p0", a::lt(a::nat(0), a::var("p0")));
    vec![
        ("pi1", stdlib::pi1(), Type::seq(nn.clone())),
        ("pi2", stdlib::pi2(), Type::seq(nn.clone())),
        (
            "broadcast",
            stdlib::broadcast(),
            Type::prod(Type::Nat, seq_n.clone()),
        ),
        (
            "sigma1",
            stdlib::sigma1(&Type::Nat),
            Type::seq(Type::sum(Type::Nat, Type::Nat)),
        ),
        (
            "sigma2",
            stdlib::sigma2(&Type::Nat),
            Type::seq(Type::sum(Type::Nat, Type::Nat)),
        ),
        ("filter(>0)", stdlib::filter(gt0, &Type::Nat), seq_n.clone()),
        (
            "index",
            a::lam(
                "p",
                stdlib::index(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
        ),
        (
            "index_split",
            a::lam(
                "p",
                stdlib::index_split(a::fst(a::var("p")), a::snd(a::var("p"))),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
        ),
        (
            "nth",
            a::lam(
                "p",
                stdlib::nth(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
        ),
        (
            "take",
            a::lam(
                "p",
                stdlib::take(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
        ),
        (
            "drop",
            a::lam(
                "p",
                stdlib::drop(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
        ),
        (
            "first",
            a::lam("x", stdlib::first(a::var("x"), &Type::Nat)),
            seq_n.clone(),
        ),
        (
            "last",
            a::lam("x", stdlib::last(a::var("x"), &Type::Nat)),
            seq_n.clone(),
        ),
        (
            "tail",
            a::lam("x", stdlib::tail(a::var("x"), &Type::Nat)),
            seq_n.clone(),
        ),
        (
            "remove_last",
            a::lam("x", stdlib::remove_last(a::var("x"), &Type::Nat)),
            seq_n.clone(),
        ),
        (
            "isqrt_pow2",
            a::lam("x", stdlib::isqrt_pow2(a::var("x"))),
            Type::Nat,
        ),
        (
            "sum_seq",
            a::lam("x", stdlib::numeric::sum_seq(a::var("x"))),
            seq_n.clone(),
        ),
        (
            "maximum",
            a::lam("x", stdlib::maximum(a::var("x"))),
            seq_n.clone(),
        ),
        (
            "prefix_sum",
            a::lam("x", stdlib::prefix_sum(a::var("x"))),
            seq_n.clone(),
        ),
        (
            "bm_route",
            a::lam(
                "p",
                stdlib::bm_route(
                    a::fst(a::fst(a::var("p"))),
                    a::snd(a::fst(a::var("p"))),
                    a::snd(a::var("p")),
                ),
            ),
            Type::prod(Type::prod(seq_n.clone(), seq_n.clone()), seq_n.clone()),
        ),
        (
            "m_route",
            a::lam(
                "p",
                stdlib::m_route(a::fst(a::var("p")), a::snd(a::var("p"))),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
        ),
        (
            "combine_flags",
            a::lam(
                "p",
                stdlib::combine_flags(
                    a::fst(a::var("p")),
                    a::fst(a::snd(a::var("p"))),
                    a::snd(a::snd(a::var("p"))),
                    &Type::Nat,
                ),
            ),
            Type::prod(
                Type::seq(Type::bool_()),
                Type::prod(seq_n.clone(), seq_n.clone()),
            ),
        ),
    ]
}
