//! Soundness of the symbolic cost analyzer (`bvram::cost_program`) over
//! everything the repo can run: every runnable stdlib function, every
//! golden `.nsc` example, and a battery of fuzz-generated straight-line
//! programs.  For each program that runs to completion, the measured
//! [`bvram::Stats`] must sit under the symbolic certificate evaluated at
//! the *actual* input-register lengths — `T ≤ T'(lens)` and
//! `W ≤ W'(lens)` — on both backends and at both optimization levels.
//!
//! Soundness alone is satisfiable by `⊤` everywhere, so a precision
//! sweep then pins the five golden examples (and the scalar-map stdlib
//! workloads) to finite polynomial bounds.

use bvram::{cost_program, CostReport, Stats};
use nsc_compile::pipeline::{arg_register_lengths, encode_arg, run_program_on};
use nsc_compile::{compile_nsc_with, Backend, OptLevel};
use nsc_core::parse::parse_module;
use nsc_core::types::Type;
use nsc_core::value::Value;
use std::path::PathBuf;

mod common;
use common::typed_suite;

/// Runs `f` on a thread with enough stack for the deepest stdlib
/// compilations, mirroring `src/bin/nsc.rs` and `tests/static_verify.rs`.
fn on_big_stack(f: fn()) {
    std::thread::Builder::new()
        .name("cost-soundness-worker".into())
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn worker")
        .join()
        .expect("worker panicked");
}

/// A deterministic inhabitant of `t` whose sequences have length `n`.
/// Scalars stay small (`1..=3`) so index/take/drop-style arguments are
/// usually in range at the sweep's sizes; runs that still fault (e.g.
/// `bm_route` with counts that don't sum to the bound) are skipped — the
/// claim under test is about *successful* runs.
fn sample(t: &Type, n: u64) -> Value {
    match t {
        Type::Unit => Value::unit(),
        Type::Nat => Value::nat(n % 3 + 1),
        Type::Prod(a, b) => Value::pair(sample(a, n), sample(b, n)),
        Type::Sum(a, b) => {
            if n.is_multiple_of(2) {
                Value::inl(sample(a, n))
            } else {
                Value::inr(sample(b, n))
            }
        }
        Type::Seq(s) => Value::seq((0..n).map(|i| sample(s, i)).collect()),
    }
}

/// Checks one successful run against its certificate: the measured stats
/// must sit under each finite bound evaluated at `lens` (a `⊤` bound
/// constrains nothing — that's what the precision tests are for).
fn assert_sound(what: &str, report: &CostReport, lens: &[u64], stats: &Stats) {
    assert_eq!(
        lens.len(),
        report.n_syms,
        "{what}: certificate arity disagrees with the calling convention"
    );
    if let Some(t) = report.time.eval(lens) {
        assert!(
            stats.time <= t,
            "{what}: measured T {} exceeds bound {} at lens {lens:?}",
            stats.time,
            t
        );
    }
    if let Some(w) = report.work.eval(lens) {
        assert!(
            stats.work <= w,
            "{what}: measured W {} exceeds bound {} at lens {lens:?}",
            stats.work,
            w
        );
    }
}

/// Every runnable stdlib function: measured cost under the symbolic
/// bound, both backends, `O0` and `O1`, across an input-size sweep.
#[test]
fn stdlib_bounds_are_sound() {
    on_big_stack(|| {
        let mut ran = 0usize;
        let mut skipped = Vec::new();
        for (name, f, dom) in typed_suite() {
            for level in [OptLevel::O0, OptLevel::O1] {
                let c = compile_nsc_with(&f, &dom, level)
                    .unwrap_or_else(|e| panic!("compiling {name} at {level:?}: {e}"));
                let report = cost_program(&c.program);
                let mut succeeded = false;
                for n in [0u64, 1, 4, 9] {
                    let arg = sample(&dom, n);
                    let lens = arg_register_lengths(&arg, &dom).unwrap();
                    for backend in [Backend::Seq, Backend::Par] {
                        let regs = encode_arg(&arg, &dom).unwrap();
                        let Ok(out) = run_program_on(&c.program, regs, backend) else {
                            // Partial functions (indexing past the end,
                            // route invariants) may fault on generic
                            // inputs; soundness only speaks about runs
                            // that complete.
                            continue;
                        };
                        succeeded = true;
                        ran += 1;
                        assert_sound(
                            &format!("{name} at {level:?} n={n} {}", backend.name()),
                            &report,
                            &lens,
                            &out.stats,
                        );
                    }
                }
                if !succeeded {
                    skipped.push(format!("{name} at {level:?}"));
                }
            }
        }
        // The sweep must actually exercise the analyzer: nearly every
        // roster entry completes on the sampled inputs (only bm_route's
        // data-dependent count invariant can reject them all).
        assert!(
            skipped.len() <= 2,
            "too many stdlib functions never ran: {skipped:?}"
        );
        assert!(ran >= 100, "only {ran} successful runs across the roster");
    });
}

/// Every golden `.nsc` example on its shipped `input`: measured cost
/// under the symbolic bound, both backends, `O0` and `O1` — and the
/// precision half: each example's bounds must be finite polynomials at
/// both levels (a sound-but-`⊤` analyzer fails here).
#[test]
fn golden_example_bounds_are_sound_and_finite() {
    on_big_stack(|| {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
        let mut seen = 0;
        for entry in std::fs::read_dir(dir).expect("examples/ directory") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_none_or(|e| e != "nsc") {
                continue;
            }
            seen += 1;
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).expect("read example");
            let module = parse_module(&src).unwrap_or_else(|e| panic!("parsing {name}: {e}"));
            let def = module.get("main").expect("examples define main");
            let pure = module
                .inlined("main")
                .unwrap_or_else(|e| panic!("inlining {name}: {e}"));
            let input = module
                .input
                .clone()
                .unwrap_or_else(|| panic!("{name} ships no input directive"));
            for level in [OptLevel::O0, OptLevel::O1] {
                let c = compile_nsc_with(&pure, &def.dom, level)
                    .unwrap_or_else(|e| panic!("compiling {name} at {level:?}: {e}"));
                let report = cost_program(&c.program);
                assert!(
                    report.is_finite(),
                    "{name} at {level:?}: golden examples must get polynomial \
                     bounds, got\n{report}"
                );
                let lens = arg_register_lengths(&input, &def.dom).unwrap();
                for backend in [Backend::Seq, Backend::Par] {
                    let regs = encode_arg(&input, &def.dom).unwrap();
                    let out = run_program_on(&c.program, regs, backend)
                        .unwrap_or_else(|e| panic!("{name} at {level:?}: {e}"));
                    assert_sound(
                        &format!("{name} at {level:?} {}", backend.name()),
                        &report,
                        &lens,
                        &out.stats,
                    );
                }
            }
        }
        assert_eq!(seen, 5, "expected the five golden examples");
    });
}

/// Old-vs-new degree comparison: going from the unoptimized, unfused
/// `O0` lowering to the full `O1` pipeline (fusion + the BVRAM pass
/// stack) may tighten a certified bound but must never raise its
/// polynomial degree or collapse it to `⊤` — a rewrite that turns an
/// `O(n)` certificate into `O(n²)` (or loses it entirely) would silently
/// corrupt the pack-vs-lanes plan selection that reads these bounds.
/// Swept over the golden examples and the runnable stdlib roster, on
/// both `T'` and `W'`, checking total degree and per-symbol degrees.
#[test]
fn optimization_never_raises_certified_degrees() {
    on_big_stack(|| {
        let mut programs: Vec<(String, nsc_core::Func, Type)> = typed_suite()
            .into_iter()
            .map(|(n, f, d)| (n.to_string(), f, d))
            .collect();
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
        for entry in std::fs::read_dir(dir).expect("examples/ directory") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_none_or(|e| e != "nsc") {
                continue;
            }
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).expect("read example");
            let module = parse_module(&src).unwrap_or_else(|e| panic!("parsing {name}: {e}"));
            let dom = module
                .get("main")
                .expect("examples define main")
                .dom
                .clone();
            let pure = module
                .inlined("main")
                .unwrap_or_else(|e| panic!("inlining {name}: {e}"));
            programs.push((name, pure, dom));
        }
        let mut compared = 0usize;
        for (name, f, dom) in &programs {
            let old = compile_nsc_with(f, dom, OptLevel::O0)
                .unwrap_or_else(|e| panic!("compiling {name} at O0: {e}"));
            let new = compile_nsc_with(f, dom, OptLevel::O1)
                .unwrap_or_else(|e| panic!("compiling {name} at O1: {e}"));
            let r_old = cost_program(&old.program);
            let r_new = cost_program(&new.program);
            for (what, b_old, b_new) in [
                ("T'", &r_old.time, &r_new.time),
                ("W'", &r_old.work, &r_new.work),
            ] {
                let Some(p_old) = b_old.as_poly() else {
                    continue; // O0 already ⊤: nothing to preserve.
                };
                let p_new = b_new.as_poly().unwrap_or_else(|| {
                    panic!("{name}: {what} was {p_old} at O0 but ⊤ at O1:\n{b_new}")
                });
                compared += 1;
                assert!(
                    p_new.degree() <= p_old.degree(),
                    "{name}: optimization raised the {what} degree: \
                     {p_old} (deg {}) -> {p_new} (deg {})",
                    p_old.degree(),
                    p_new.degree()
                );
                for i in 0..r_old.n_syms.min(r_new.n_syms) {
                    assert!(
                        p_new.degree_in(i) <= p_old.degree_in(i),
                        "{name}: optimization raised the {what} degree in n{i}: \
                         {p_old} -> {p_new}"
                    );
                }
            }
        }
        // The comparison must have real coverage: most roster entries
        // carry finite O0 certificates on at least one component.
        assert!(
            compared >= 20,
            "only {compared} finite old-vs-new degree comparisons ran"
        );
    });
}

/// Fuzz-generated straight-line programs: the analyzer's per-instruction
/// transfer functions (append growth, route output bounds, select's
/// data dependence) must stay sound on programs nobody hand-shaped.
/// Finiteness can't be demanded of every program — an unconstrained
/// `bm_route`'s output length is genuinely not a function of its input
/// lengths, so `⊤` is the *correct* answer there — but the decoder emits
/// valid-by-construction routes most of the time, so the bulk of the
/// corpus must still get polynomial bounds.
#[test]
fn fuzz_bounds_are_sound() {
    let mut ran = 0usize;
    let mut finite = 0usize;
    for seed in 0..200u64 {
        let words: Vec<u64> = (0..40u64)
            .map(|i| {
                (seed + 1)
                    .wrapping_mul(i.wrapping_add(3))
                    .wrapping_mul(0x2545_f491_4f6c_dd1d)
            })
            .collect();
        let input_lens = [5 + (seed % 4) as usize, 2, 1 + (seed % 3) as usize];
        let p = bvram::fuzz::decode_program(&words, input_lens, bvram::fuzz::FUZZ_REGS);
        let report = cost_program(&p);
        if report.is_finite() {
            finite += 1;
        }
        let inputs: Vec<Vec<u64>> = input_lens
            .iter()
            .map(|&l| (0..l as u64).map(|i| i % 7 + 1).collect())
            .collect();
        let lens: Vec<u64> = input_lens.iter().map(|&l| l as u64).collect();
        let seq = bvram::Machine::new(p.n_regs).run(&p, &inputs);
        let par = bvram::ParMachine::new(p.n_regs).run(&p, &inputs);
        for (backend, out) in [("seq", seq), ("par", par)] {
            let Ok(out) = out else { continue };
            ran += 1;
            assert_sound(
                &format!("fuzz seed {seed} {backend}"),
                &report,
                &lens,
                &out.stats,
            );
        }
    }
    assert!(ran >= 100, "only {ran}/400 fuzz runs completed");
    assert!(
        finite >= 100,
        "only {finite}/200 fuzz programs got finite bounds"
    );
}
