//! Cross-crate integration tests: the paper's whole pipeline exercised
//! from the facade crate, plus property-based differential testing.

use common::suite;
use nsc::core::ast as a;
use nsc::core::value::Value;
use nsc::core::Type;
use proptest::prelude::*;

mod common;

#[test]
fn whole_pipeline_agrees_on_suite() {
    let dom = Type::seq(Type::Nat);
    for (name, f) in suite() {
        let c = nsc::compile::compile_nsc(&f, &dom).expect(name);
        for n in [0u64, 1, 7, 33] {
            let arg = Value::nat_seq((0..n).map(|i| (i * 31) % 17));
            let (want, _) = nsc::core::eval::apply_func(&f, arg.clone()).expect(name);
            let (got, _) = nsc::compile::run_compiled(&c, &arg).expect(name);
            assert_eq!(got, want, "{name} at n={n}");
        }
    }
}

#[test]
fn optimizer_differential_on_suite() {
    // For every suite program: the O0 and O1 compilations produce
    // bit-identical machine-level outputs, O1 never costs more in T'/W',
    // and its register file is no larger.
    use nsc::compile::OptLevel;
    let dom = Type::seq(Type::Nat);
    for (name, f) in suite() {
        let c0 = nsc::compile::compile_nsc_with(&f, &dom, OptLevel::O0).expect(name);
        let c1 = nsc::compile::compile_nsc_with(&f, &dom, OptLevel::O1).expect(name);
        assert!(
            c1.program.n_regs <= c0.program.n_regs,
            "{name}: optimizer grew the register file"
        );
        assert!(
            c1.program.instrs.len() <= c0.program.instrs.len(),
            "{name}: optimizer grew the program"
        );
        for n in [0u64, 1, 7, 33] {
            let arg = Value::nat_seq((0..n).map(|i| (i * 31) % 17));
            let (v0, t0) = nsc::compile::run_compiled(&c0, &arg).expect(name);
            let (v1, t1) = nsc::compile::run_compiled(&c1, &arg).expect(name);
            assert_eq!(v0, v1, "{name} at n={n}: optimized output differs");
            assert!(
                t1.time <= t0.time && t1.work <= t0.work,
                "{name} at n={n}: optimizer regressed cost {t0:?} -> {t1:?}"
            );
        }
    }
}

#[test]
fn maprec_to_machine_grand_tour() {
    // map-recursion -> Theorem 4.2 -> Theorem 7.1 -> BVRAM execution.
    use nsc::core::maprec::fixtures::{range, range_sum};
    let def = range_sum();
    let f = nsc::core::maprec::translate::translate(&def);
    let c = nsc::compile::compile_nsc(&f, &def.dom).unwrap();
    let (v, _) = nsc::compile::run_compiled(&c, &range(0, 12)).unwrap();
    assert_eq!(v, Value::nat(66));
}

#[test]
fn valiant_mergesort_through_translation() {
    let def = nsc::algorithms::valiant::mergesort_def();
    let f = nsc::core::maprec::translate::translate(&def);
    let xs: Vec<u64> = (0..48).map(|i| (i * 53 + 7) % 100).collect();
    let mut want = xs.clone();
    want.sort();
    let (v, _) = nsc::core::eval::apply_func(&f, Value::nat_seq(xs)).unwrap();
    assert_eq!(v.as_nat_seq().unwrap(), want);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled pipeline agrees with NSC semantics on arbitrary inputs.
    #[test]
    fn prop_compiled_map_agrees(xs in proptest::collection::vec(0u64..1000, 0..40)) {
        let f = a::map(a::lam("x", a::add(a::mul(a::var("x"), a::nat(3)), a::nat(1))));
        let dom = Type::seq(Type::Nat);
        let c = nsc::compile::compile_nsc(&f, &dom).unwrap();
        let arg = Value::nat_seq(xs);
        let (want, _) = nsc::core::eval::apply_func(&f, arg.clone()).unwrap();
        let (got, _) = nsc::compile::run_compiled(&c, &arg).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Batched while (Map Lemma) matches per-element iteration on
    /// arbitrary iteration counts, including the extraction + reorder.
    #[test]
    fn prop_batched_while_agrees(xs in proptest::collection::vec(0u64..64, 0..24)) {
        let f = a::map(a::while_(
            a::lam("x", a::lt(a::nat(0), a::var("x"))),
            a::lam("x", a::monus(a::var("x"), a::nat(2))),
        ));
        let dom = Type::seq(Type::Nat);
        let c = nsc::compile::compile_nsc(&f, &dom).unwrap();
        let arg = Value::nat_seq(xs);
        let (want, _) = nsc::core::eval::apply_func(&f, arg.clone()).unwrap();
        let (got, _) = nsc::compile::run_compiled(&c, &arg).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Both sorting algorithms sort, and agree with std.
    #[test]
    fn prop_sorts_agree(xs in proptest::collection::vec(0u64..500, 0..32)) {
        use nsc::core::maprec::direct::eval_maprec;
        let mut want = xs.clone();
        want.sort();
        let arg = Value::nat_seq(xs);
        let v = eval_maprec(&nsc::algorithms::valiant::mergesort_def(), arg.clone()).unwrap();
        prop_assert_eq!(v.value.as_nat_seq().unwrap(), want.clone());
        let q = eval_maprec(&nsc::algorithms::schemas::quicksort_def(), arg).unwrap();
        prop_assert_eq!(q.value.as_nat_seq().unwrap(), want);
    }

    /// Theorem 4.2 translations (plain and staged) agree with the direct
    /// recursion on random range-sum inputs.
    #[test]
    fn prop_translations_agree(lo in 0u64..40, width in 1u64..60) {
        use nsc::core::maprec::fixtures::{range, range_sum};
        let def = range_sum();
        let arg = range(lo, lo + width);
        let want = nsc::core::maprec::direct::eval_maprec(&def, arg.clone()).unwrap().value;
        let plain = nsc::core::maprec::translate::translate(&def);
        let (v, _) = nsc::core::eval::apply_func(&plain, arg.clone()).unwrap();
        prop_assert_eq!(v, want.clone());
        let staged = nsc::core::maprec::staged::translate_staged(&def, 2);
        let (v, _) = nsc::core::eval::apply_func(&staged, arg).unwrap();
        prop_assert_eq!(v, want);
    }
}
