//! Smoke test: every binary under `examples/` runs to completion and
//! prints something, and every `.nsc` golden file runs end to end through
//! the `nsc` CLI. `cargo test` compiles the examples and bin targets
//! before running test binaries, so they are guaranteed to exist next to
//! this test's own profile directory.
//!
//! (`tests/surface_syntax.rs` checks the `.nsc` files' *outputs* against
//! golden values, per backend; here they only need to run.)

use std::path::PathBuf;
use std::process::Command;

/// The `target/<profile>/examples` directory for the running profile.
fn examples_dir() -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push("examples");
    p
}

#[test]
fn every_example_runs_to_completion() {
    let dir = examples_dir();
    let names = ["quickstart", "sorting", "divide_conquer", "nested_queries"];
    for name in names {
        let mut path = dir.join(name);
        if !path.exists() {
            path.set_extension("exe"); // windows layout
        }
        assert!(
            path.exists(),
            "example binary `{name}` not found at {}; \
             did a new example get added without updating this list?",
            path.display()
        );
        let out = Command::new(&path)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn example `{name}`: {e}"));
        assert!(
            out.status.success(),
            "example `{name}` exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        assert!(
            !out.stdout.is_empty(),
            "example `{name}` printed nothing to stdout"
        );
    }
}

#[test]
fn every_nsc_example_runs_under_the_cli() {
    let mut bin = examples_dir();
    bin.pop(); // back to <profile>/
    bin.push("nsc");
    if !bin.exists() {
        bin.set_extension("exe");
    }
    assert!(bin.exists(), "nsc binary not found at {}", bin.display());
    let src_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut ran = 0;
    for entry in std::fs::read_dir(src_dir).expect("examples/ directory") {
        let path = entry.unwrap().path();
        if path.extension().map(|e| e == "nsc") != Some(true) {
            continue;
        }
        let out = Command::new(&bin)
            .arg("run")
            .arg(&path)
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn nsc on {}: {e}", path.display()));
        assert!(
            out.status.success(),
            "nsc run {} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            path.display(),
            out.status.code(),
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr),
        );
        ran += 1;
    }
    assert!(
        ran >= 5,
        "expected at least 5 .nsc golden files, found {ran}"
    );
}

#[test]
fn example_list_is_exhaustive() {
    // Guards the hard-coded list above against silently going stale.
    let src_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
    let mut found: Vec<String> = std::fs::read_dir(src_dir)
        .expect("examples/ directory")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "rs").then(|| p.file_stem().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    found.sort();
    let mut expected = vec![
        "divide_conquer".to_string(),
        "nested_queries".to_string(),
        "quickstart".to_string(),
        "sorting".to_string(),
    ];
    expected.sort();
    assert_eq!(found, expected);
}
