//! Fusion semantics preservation, deterministically.
//!
//! The `map(f) ∘ map(g) ⇒ map(f ∘ g)` rewrite (`nsc::algebra::fuse`)
//! runs on NSC source before translation, so a bug in it would
//! miscompile *everything downstream* while still producing a
//! verifier-clean BVRAM program.  These tests pin the rewrite against
//! the unfused pipeline over the whole runnable stdlib roster and the
//! shared workload suite — and check the harness itself has teeth by
//! feeding it a deliberately unsound rewrite.
//!
//! The randomized counterpart (fuzz functions, random map chains) lives
//! in `tests/properties.rs`.

mod common;

use nsc::compile::{
    compile_nsc_unfused, compile_nsc_verified, run_compiled_on, Backend, Compiled, OptLevel,
    VerifyLevel,
};
use nsc::core::ast as a;
use nsc::core::value::Value;
use nsc::core::{EvalError, Func, Type};

/// A deterministic inhabitant of `t` whose sequences have length `n`
/// (same convention as `tests/cost_soundness.rs`: scalars stay small so
/// index-style arguments are usually in range).
fn sample(t: &Type, n: u64) -> Value {
    match t {
        Type::Unit => Value::unit(),
        Type::Nat => Value::nat(n % 3 + 1),
        Type::Prod(a, b) => Value::pair(sample(a, n), sample(b, n)),
        Type::Sum(a, b) => {
            if n.is_multiple_of(2) {
                Value::inl(sample(a, n))
            } else {
                Value::inr(sample(b, n))
            }
        }
        Type::Seq(s) => Value::seq((0..n).map(|i| sample(s, i)).collect()),
    }
}

/// Compiles `f` through both pipelines (full translation validation)
/// and asserts bit-identical `Result`s — value *and* fault
/// classification — on both backends at every sample size.
fn assert_fusion_invisible(name: &str, f: &Func, dom: &Type) {
    let cf = compile_nsc_verified(f, dom, OptLevel::O1, VerifyLevel::Full)
        .unwrap_or_else(|e| panic!("{name}: fused compile failed: {e}"));
    let cu = compile_nsc_unfused(f, dom, OptLevel::O1, VerifyLevel::Full)
        .unwrap_or_else(|e| panic!("{name}: unfused compile failed: {e}"));
    for n in [0u64, 1, 4, 9] {
        let arg = sample(dom, n);
        for backend in [Backend::Seq, Backend::Par] {
            let rf = run_compiled_on(&cf, &arg, backend).map(|p| p.0);
            let ru = run_compiled_on(&cu, &arg, backend).map(|p| p.0);
            assert_eq!(
                rf,
                ru,
                "{name}: fused and unfused pipelines diverge at n={n} on the {} backend",
                backend.name()
            );
        }
    }
}

/// Fusion must be invisible on every runnable stdlib function — the
/// roster shared with the static-verification and cost-soundness
/// suites, so "the stdlib" means the same ASTs everywhere.
#[test]
fn fusion_is_invisible_over_the_stdlib_roster() {
    for (name, f, dom) in common::typed_suite() {
        assert_fusion_invisible(name, &f, &dom);
    }
}

/// ... and on the shared workload suite plus the chained-map
/// differential workloads, where fusion actually fires.
#[test]
fn fusion_is_invisible_over_the_workload_suite() {
    let dom = Type::seq(Type::Nat);
    for (name, f) in common::suite() {
        assert_fusion_invisible(name, &f, &dom);
    }
    for (name, f) in [
        ("map-chain x3", nsc::runtime::workloads::chained_maps()),
        (
            "map-chain omega",
            nsc::runtime::workloads::chained_maps_faulting(),
        ),
    ] {
        assert_fusion_invisible(name, &f, &dom);
    }
}

/// The chained workloads fuse (two collapsed stages each), and the
/// faulting chain's division by zero classifies as `Ω` — not a machine
/// fault — on the fused pipeline exactly as on the unfused one.
#[test]
fn chained_workloads_fuse_and_classify_omega() {
    let dom = Type::seq(Type::Nat);
    for (name, f) in [
        ("map-chain x3", nsc::runtime::workloads::chained_maps()),
        (
            "map-chain omega",
            nsc::runtime::workloads::chained_maps_faulting(),
        ),
    ] {
        let c = compile_nsc_verified(&f, &dom, OptLevel::O1, VerifyLevel::Full).expect(name);
        assert_eq!(c.fused_stages, 2, "{name}: expected both seams to fuse");
    }
    let faulting = nsc::runtime::workloads::chained_maps_faulting();
    let c = compile_nsc_verified(&faulting, &dom, OptLevel::O1, VerifyLevel::Full).unwrap();
    let err = run_compiled_on(&c, &Value::nat_seq(0..4), Backend::Seq)
        .expect_err("input contains a zero, the middle stage divides by it");
    assert_eq!(err, EvalError::Omega, "fault misclassified: {err:?}");
}

/// Differential check used by the mutation test below: compiles the
/// *rewritten* function through the unfused pipeline (so the real fuser
/// cannot mask the mutation) and compares it against the original on a
/// spread of inputs, reporting the first divergence by rewrite name.
fn check_rewrite(rewrite: &str, original: &Func, rewritten: &Func) -> Result<(), String> {
    let dom = Type::seq(Type::Nat);
    let co = compile_nsc_unfused(original, &dom, OptLevel::O1, VerifyLevel::Full)
        .map_err(|e| format!("fuse rewrite `{rewrite}`: original no longer compiles: {e}"))?;
    let cr = compile_nsc_unfused(rewritten, &dom, OptLevel::O1, VerifyLevel::Full)
        .map_err(|e| format!("fuse rewrite `{rewrite}`: rewritten form does not compile: {e}"))?;
    for n in [0u64, 1, 4, 9] {
        let arg = Value::nat_seq((0..n).map(|i| i * 5 % 13));
        let ro = run_compiled_on(&co, &arg, Backend::Seq).map(|p| p.0);
        let rr = run_compiled_on(&cr, &arg, Backend::Seq).map(|p| p.0);
        if ro != rr {
            return Err(format!(
                "fuse rewrite `{rewrite}` is unsound at n={n}: {ro:?} vs {rr:?}"
            ));
        }
    }
    Ok(())
}

/// The differential harness has teeth: a deliberately unsound fusion
/// rewrite — composing the two stages in the wrong order — is caught
/// and reported *by name*, while the real fuser's output passes.  This
/// is the fusion analogue of the optimizer's mutation tests: it proves
/// the tests above would actually fail if `nsc::algebra::fuse` broke.
#[test]
fn unsound_fusion_rewrite_is_caught_by_name() {
    // map(+1) ∘ map(×2): order matters (2x+1 vs 2x+2).
    let chain = a::lam(
        "v",
        a::app(
            a::map(a::lam("x", a::add(a::var("x"), a::nat(1)))),
            a::app(
                a::map(a::lam("x", a::mul(a::var("x"), a::nat(2)))),
                a::var("v"),
            ),
        ),
    );

    // The real rewrite passes the differential.
    let fused = nsc::algebra::fuse::fuse_func(&chain);
    assert_eq!(fused.stages, 1);
    check_rewrite("map-compose", &chain, &fused.func).expect("sound fusion flagged as unsound");

    // The mutated rewrite — f and g swapped — is caught, naming itself.
    let wrong = a::lam(
        "v",
        a::app(
            a::map(a::lam(
                "x",
                a::mul(a::add(a::var("x"), a::nat(1)), a::nat(2)),
            )),
            a::var("v"),
        ),
    );
    let err = check_rewrite("map-compose-wrong-order", &chain, &wrong)
        .expect_err("wrong-order composition must not pass the differential");
    assert!(
        err.contains("fuse rewrite `map-compose-wrong-order` is unsound"),
        "divergence report does not name the rewrite: {err}"
    );
}

/// `Compiled::from_parts` documents `fused_stages: 0`; the unfused
/// entry point must agree so `nsc bench --explain` and serving metrics
/// can never report phantom stages.
#[test]
fn unfused_pipeline_reports_zero_stages() {
    let c: Compiled = compile_nsc_unfused(
        &nsc::runtime::workloads::chained_maps(),
        &Type::seq(Type::Nat),
        OptLevel::O1,
        VerifyLevel::Full,
    )
    .unwrap();
    assert_eq!(c.fused_stages, 0);
}
