//! Property-based tests over the reproduction's core invariants:
//! encodings are bijections, the segmented toolkit operations satisfy
//! their algebraic laws, and every language layer agrees with the one
//! above it on randomized inputs.

use nsc::algebra::sa::flatten::{compile_type, decode, encode};
use nsc::algebra::sa::map_lemma as ml;
use nsc::algebra::sa::seq::{batch_len, decode_batch, encode_batch, seq_type};
use nsc::core::value::Value;
use nsc::core::Type;
use proptest::prelude::*;

/// Random nested value of type [[N]] (the workhorse nested type).
fn nested() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(0u64..100, 0..6), 0..8)
}

fn to_value(v: &[Vec<u64>]) -> Value {
    Value::seq(
        v.iter()
            .map(|xs| Value::nat_seq(xs.iter().copied()))
            .collect(),
    )
}

mod common;

// ---------------------------------------------------------------------------
// Random NSC terms for the parser round-trip property.
//
// The vendored proptest shim has no recursive combinators, so terms are
// generated fuzz-style: a word vector drives a deterministic decoder that
// picks constructors until the depth budget runs out (the same technique
// as `bvram::fuzz::decode_program`).  Shrinking the word vector shrinks
// the term.  The terms are well-scoped but deliberately NOT type-checked:
// the round-trip law is purely syntactic.
// ---------------------------------------------------------------------------

struct Words<'a> {
    ws: &'a [u64],
    i: usize,
}

impl Words<'_> {
    fn next(&mut self) -> u64 {
        let w = self.ws[self.i % self.ws.len()];
        // Mix the position in so a cycled word vector doesn't lock the
        // decoder into one constructor forever.
        self.i += 1;
        w.wrapping_add(0x9e3779b97f4a7c15u64.wrapping_mul(self.i as u64))
    }

    fn pick(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const NAMES: &[&str] = &["x", "y", "zs", "acc", "p#0", "__tmp", "a1"];

fn gen_name(w: &mut Words) -> &'static str {
    NAMES[w.pick(NAMES.len() as u64) as usize]
}

fn gen_type(w: &mut Words, depth: u64) -> Type {
    match if depth == 0 { w.pick(3) } else { w.pick(6) } {
        0 => Type::Unit,
        1 => Type::Nat,
        2 => Type::bool_(),
        3 => Type::seq(gen_type(w, depth - 1)),
        4 => Type::prod(gen_type(w, depth - 1), gen_type(w, depth - 1)),
        _ => Type::sum(gen_type(w, depth - 1), gen_type(w, depth - 1)),
    }
}

fn gen_term(w: &mut Words, depth: u64) -> nsc::core::Term {
    use nsc::core::ast::*;
    if depth == 0 {
        return match w.pick(6) {
            0 => var(gen_name(w)),
            1 => nat(w.pick(1000)),
            2 => unit(),
            3 => tt(),
            4 => ff(),
            _ => empty(gen_type(w, 1)),
        };
    }
    let d = depth - 1;
    match w.pick(24) {
        0 => var(gen_name(w)),
        1 => nat(w.pick(1000)),
        2 => unit(),
        3 => omega(gen_type(w, 2)),
        4 => {
            let ops = [
                ArithOp::Add,
                ArithOp::Monus,
                ArithOp::Mul,
                ArithOp::Div,
                ArithOp::Mod,
                ArithOp::Rshift,
                ArithOp::Lshift,
                ArithOp::Min,
                ArithOp::Max,
                ArithOp::Log2,
            ];
            arith(
                ops[w.pick(ops.len() as u64) as usize],
                gen_term(w, d),
                gen_term(w, d),
            )
        }
        5 => eq(gen_term(w, d), gen_term(w, d)),
        6 => le(gen_term(w, d), gen_term(w, d)),
        7 => lt(gen_term(w, d), gen_term(w, d)),
        8 => pair(gen_term(w, d), gen_term(w, d)),
        9 => fst(gen_term(w, d)),
        10 => snd(gen_term(w, d)),
        11 => inl(gen_term(w, d), gen_type(w, 2)),
        12 => inr(gen_term(w, d), gen_type(w, 2)),
        13 => case(
            gen_term(w, d),
            gen_name(w),
            gen_term(w, d),
            gen_name(w),
            gen_term(w, d),
        ),
        14 => app(gen_func(w, d), gen_term(w, d)),
        15 => empty(gen_type(w, 2)),
        16 => singleton(gen_term(w, d)),
        17 => append(gen_term(w, d), gen_term(w, d)),
        18 => flatten(gen_term(w, d)),
        19 => length(gen_term(w, d)),
        20 => get(gen_term(w, d)),
        21 => zip(gen_term(w, d), gen_term(w, d)),
        22 => enumerate(gen_term(w, d)),
        _ => split(gen_term(w, d), gen_term(w, d)),
    }
}

fn gen_func(w: &mut Words, depth: u64) -> nsc::core::Func {
    use nsc::core::ast::*;
    if depth == 0 {
        return lam(gen_name(w), var(gen_name(w)));
    }
    let d = depth - 1;
    match w.pick(5) {
        0 => lam(gen_name(w), gen_term(w, d)),
        1 => lam_t(gen_name(w), gen_type(w, 2), gen_term(w, d)),
        2 => map(gen_func(w, d)),
        3 => while_(gen_func(w, d), gen_func(w, d)),
        _ => named("helper"),
    }
}

/// A random scalar body over `x : N` built only from `N → N → N`
/// operators, so a `map` chain of these always type checks end to end —
/// `div`/`mod` keep genuine `Ω` cases (division by zero) in play.
fn gen_scalar_body(w: &mut Words, depth: u64) -> nsc::core::Term {
    use nsc::core::ast::*;
    if depth == 0 {
        return if w.pick(2) == 0 {
            var("x")
        } else {
            nat(w.pick(9))
        };
    }
    let d = depth - 1;
    match w.pick(7) {
        0 => var("x"),
        1 => nat(w.pick(9)),
        2 => add(gen_scalar_body(w, d), gen_scalar_body(w, d)),
        3 => mul(gen_scalar_body(w, d), gen_scalar_body(w, d)),
        4 => arith(ArithOp::Div, gen_scalar_body(w, d), gen_scalar_body(w, d)),
        5 => arith(ArithOp::Monus, gen_scalar_body(w, d), gen_scalar_body(w, d)),
        _ => arith(ArithOp::Max, gen_scalar_body(w, d), gen_scalar_body(w, d)),
    }
}

/// Runs a compiled program under a step limit, mapping machine faults
/// onto NSC error semantics exactly like `run_compiled_on`.  `None`
/// means the limit tripped — the program may genuinely diverge (fuzz
/// functions can type check a constant-true `while`), so the caller
/// must skip the comparison rather than decide it.
fn run_bounded(
    c: &nsc::compile::Compiled,
    arg: &Value,
    backend: nsc::compile::Backend,
) -> Option<Result<Value, nsc::core::EvalError>> {
    use nsc::compile::{decode_result, encode_arg, eval_error_of, Backend};
    use nsc::machine::{Machine, MachineError, ParMachine};
    let regs = match encode_arg(arg, &c.dom) {
        Ok(r) => r,
        Err(e) => return Some(Err(e)),
    };
    let out = match backend {
        Backend::Seq => Machine::new(c.program.n_regs)
            .with_step_limit(1 << 22)
            .run_owned(&c.program, regs),
        Backend::Par => ParMachine::new(c.program.n_regs)
            .with_step_limit(1 << 22)
            .run_owned(&c.program, regs),
    };
    match out {
        Err(MachineError::StepLimit) => None,
        Err(e) => Some(Err(eval_error_of(e))),
        Ok(out) => Some(decode_result(&out.outputs, &c.cod)),
    }
}

thread_local! {
    /// The shared suite with each function compiled down to the BVRAM
    /// once per thread, not once per property case. (`Func` holds `Rc`s,
    /// so a process-global cache is not an option.)
    static COMPILED_SUITE: Vec<(&'static str, nsc::core::Func, nsc::compile::Compiled)> = {
        let dom = Type::seq(Type::Nat);
        common::suite()
            .into_iter()
            .map(|(name, f)| {
                let c = nsc::compile::compile_nsc(&f, &dom).expect(name);
                (name, f, c)
            })
            .collect()
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SEQ batch encoding is a bijection on [N]-element batches.
    #[test]
    fn prop_seq_encoding_bijective(v in nested()) {
        let t = Type::seq(Type::Nat);
        let vals: Vec<Value> = v.iter().map(|xs| Value::nat_seq(xs.iter().copied())).collect();
        let enc = encode_batch(&vals, &t).unwrap();
        prop_assert!(seq_type(&t).admits(&enc));
        prop_assert_eq!(batch_len(&enc, &t).unwrap(), vals.len());
        prop_assert_eq!(decode_batch(&enc, &t).unwrap(), vals);
    }

    /// COMPILE's encode/decode round-trips arbitrary [[N]] values.
    #[test]
    fn prop_compile_encoding_bijective(v in nested()) {
        let t = Type::seq(Type::seq(Type::Nat));
        let val = to_value(&v);
        let enc = encode(&val, &t).unwrap();
        prop_assert!(compile_type(&t).admits(&enc));
        prop_assert_eq!(decode(&enc, &t).unwrap(), val);
    }

    /// pack(flags) ++ pack(!flags) is a permutation-free partition: merging
    /// the two parts back with the same flags restores the batch.
    #[test]
    fn prop_pack_merge_inverse(v in nested()) {
        let t = Type::seq(Type::Nat);
        let vals: Vec<Value> = v.iter().map(|xs| Value::nat_seq(xs.iter().copied())).collect();
        let flags: Vec<bool> = vals.iter().enumerate().map(|(i, _)| i % 3 != 1).collect();
        let fl = Value::seq(flags.iter().map(|b| Value::bool_(*b)).collect());
        let enc = encode_batch(&vals, &t).unwrap();

        let packed_t = nsc::algebra::sa::apply_sa(
            &ml::pack_enc(&t).unwrap(),
            &Value::pair(fl.clone(), enc.clone()),
        ).unwrap().0;
        let packed_f = nsc::algebra::sa::apply_sa(
            &ml::pack_enc_false(&t).unwrap(),
            &Value::pair(fl.clone(), enc),
        ).unwrap().0;
        let merged = nsc::algebra::sa::apply_sa(
            &ml::merge_enc(&t).unwrap(),
            &Value::pair(fl, Value::pair(packed_t, packed_f)),
        ).unwrap().0;
        prop_assert_eq!(decode_batch(&merged, &t).unwrap(), vals);
    }

    /// reorder_enc really is a stable sort by index: feeding any
    /// permutation of 0..n restores ascending order.
    #[test]
    fn prop_reorder_sorts_by_index(v in nested(), seed in 0u64..1000) {
        let t = Type::seq(Type::Nat);
        let n = v.len();
        let vals: Vec<Value> = v.iter().map(|xs| Value::nat_seq(xs.iter().copied())).collect();
        // pseudo-random permutation from the seed
        let mut perm: Vec<u64> = (0..n as u64).collect();
        for i in 0..n {
            let j = ((seed.wrapping_mul(6364136223846793005).wrapping_add(i as u64)) as usize) % n.max(1);
            perm.swap(i, j);
        }
        // batch arranged so element k holds original index perm[k]
        let enc = encode_batch(&vals, &t).unwrap();
        let idx = Value::nat_seq(perm.iter().copied());
        let out = nsc::algebra::sa::apply_sa(
            &ml::reorder_enc(&t).unwrap(),
            &Value::pair(idx, enc),
        ).unwrap().0;
        let got = decode_batch(&out, &t).unwrap();
        // got[j] must be the element whose index was j, i.e. vals inverse-permuted
        let mut want = vec![Value::nat_seq([]); n];
        for (k, &p) in perm.iter().enumerate() {
            want[p as usize] = vals[k].clone();
        }
        prop_assert_eq!(got, want);
    }

    /// gather_sorted == indexing for arbitrary sorted index sets.
    #[test]
    fn prop_gather_sorted(xs in proptest::collection::vec(0u64..500, 1..30),
                          picks in proptest::collection::vec(0usize..29, 0..10)) {
        let n = xs.len();
        let mut idx: Vec<u64> = picks.iter().map(|p| (*p % n) as u64).collect();
        idx.sort();
        let want: Vec<u64> = idx.iter().map(|i| xs[*i as usize]).collect();
        let arg = Value::pair(Value::nat_seq(xs), Value::nat_seq(idx));
        let (o, _) = nsc::algebra::sa::apply_sa(&ml::gather_sorted(), &arg).unwrap();
        prop_assert_eq!(o.as_nat_seq().unwrap(), want);
    }

    /// BVRAM prefix-sum codegen equals the reference scan for any input.
    #[test]
    fn prop_prefix_sum_codegen(xs in proptest::collection::vec(0u64..1000, 0..80)) {
        use nsc::algebra::sa::Sa;
        let (prog, _) = nsc::compile::compile_sa(&Sa::PrefixSum, &Type::seq(Type::Nat)).unwrap();
        let out = nsc::machine::run_program(&prog, std::slice::from_ref(&xs)).unwrap();
        let want: Vec<u64> = xs.iter().scan(0u64, |a, x| { *a += x; Some(*a) }).collect();
        prop_assert_eq!(out.outputs[0].clone(), want);
    }

    /// The rayon backend is bit-for-bit the sequential machine.
    #[test]
    fn prop_par_machine_agrees(xs in proptest::collection::vec(0u64..1000, 1..200)) {
        use nsc::machine::{Builder, Instr::*, Op};
        let mut b = Builder::new(1, 1);
        b.push(Enumerate { dst: 1, src: 0 })
            .push(Arith { dst: 2, op: Op::Mul, a: 0, b: 1 })
            .push(Arith { dst: 3, op: Op::Max, a: 2, b: 0 })
            .push(Select { dst: 0, src: 3 })
            .push(Halt);
        let p = b.build().unwrap();
        let seq = nsc::machine::run_program(&p, std::slice::from_ref(&xs)).unwrap();
        let par = nsc::machine::ParMachine::new(p.n_regs).run(&p, &[xs]).unwrap();
        prop_assert_eq!(seq.outputs, par.outputs);
        prop_assert_eq!(seq.stats, par.stats);
    }

    /// The BVRAM optimizer preserves exact semantics on arbitrary random
    /// straight-line programs: identical outputs (or an identical fault,
    /// up to the shifted instruction index) and never-worse `T'`/`W'`.
    #[test]
    fn prop_optimizer_preserves_straightline_semantics(
        words in proptest::collection::vec(0u64..u64::MAX, 1..50),
        a in proptest::collection::vec(0u64..50, 0..40),
        b in proptest::collection::vec(0u64..50, 0..40),
        c in proptest::collection::vec(0u64..5, 0..6),
    ) {
        use nsc::compile::{optimize, OptLevel};
        use nsc::machine::MachineError as ME;
        // Optimization moves instructions, so fault indices legitimately
        // shift; everything else about the fault must be identical.
        fn mask_pc(e: ME) -> ME {
            match e {
                ME::LengthMismatch { a, b, .. } => ME::LengthMismatch { at: 0, a, b },
                ME::RouteInvariant { what, .. } => ME::RouteInvariant { at: 0, what },
                ME::Arithmetic { .. } => ME::Arithmetic { at: 0 },
                other => other,
            }
        }
        // Two output registers so dead code exists for the optimizer.
        let prog = nsc::machine::fuzz::decode_program(&words, [a.len(), b.len(), c.len()], 2);
        let opt = optimize(prog.clone(), OptLevel::O1);
        prop_assert!(opt.n_regs <= prog.n_regs);
        let inputs = vec![a, b, c];
        let r0 = nsc::machine::run_program(&prog, &inputs);
        let r1 = nsc::machine::run_program(&opt, &inputs);
        match (r0, r1) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(&x.outputs, &y.outputs, "optimizer changed outputs\n{}\n{}", prog, opt);
                prop_assert!(
                    y.stats.time <= x.stats.time && y.stats.work <= x.stats.work,
                    "optimizer made the program costlier: {:?} -> {:?}\n{}\n{}",
                    x.stats, y.stats, prog, opt
                );
            }
            (Err(x), Err(y)) => prop_assert_eq!(
                mask_pc(x), mask_pc(y),
                "fault changed\n{}\n{}", prog, opt
            ),
            (x, y) => prop_assert!(false, "fault behavior changed: {:?} vs {:?}\n{}\n{}", x, y, prog, opt),
        }
    }

    /// The static verifier accepts every machine-generatable program: a
    /// fuzz program is structurally well-formed by construction, so
    /// `verify` must report no violations on it — and none on its
    /// optimized form either (the optimizer may not *introduce*
    /// malformedness).  This is the verifier's false-positive guard: a
    /// check that rejects valid programs would break per-pass
    /// translation validation everywhere.
    #[test]
    fn prop_fuzz_programs_verify_ok(
        words in proptest::collection::vec(0u64..u64::MAX, 1..60),
        la in 0usize..40, lb in 0usize..40, lc in 0usize..6,
    ) {
        use nsc::compile::{optimize, OptLevel};
        let prog = nsc::machine::fuzz::decode_program(&words, [la, lb, lc], 2);
        let before = nsc::machine::verify_program(&prog);
        prop_assert!(before.ok(), "verifier rejected a fuzz program:\n{before}\n{prog}");
        let opt = optimize(prog.clone(), OptLevel::O1);
        let after = nsc::machine::verify_program(&opt);
        prop_assert!(after.ok(), "verifier rejected an optimized fuzz program:\n{after}\n{opt}");
        // Optimization must never conjure reads of never-written
        // registers out of a program that had none.
        if before.uninit_reads.is_empty() {
            prop_assert!(
                after.uninit_reads.is_empty(),
                "optimizer introduced uninit reads:\n{after}\n{prog}\n{opt}"
            );
        }
    }

    /// Source-level `map` fusion is invisible to fuzz functions: the
    /// fused and unfused pipelines agree on whether a function compiles
    /// at all, and where both compile they agree bit-for-bit on both
    /// backends — including whether a run faults as `Ω` or as a machine
    /// fault.  A step-limit trip on either side skips the case (fuzz
    /// functions can type check a genuinely divergent `while`).
    #[test]
    fn prop_fusion_preserves_fuzz_semantics(
        words in proptest::collection::vec(0u64..u64::MAX, 1..40),
        depth in 1u64..4,
        xs in proptest::collection::vec(0u64..50, 0..10),
    ) {
        use nsc::compile::{compile_nsc_unfused, compile_nsc_verified, Backend, OptLevel, VerifyLevel};
        let f = gen_func(&mut Words { ws: &words, i: 0 }, depth);
        let dom = Type::seq(Type::Nat);
        let fused = compile_nsc_verified(&f, &dom, OptLevel::O1, VerifyLevel::Full);
        let unfused = compile_nsc_unfused(&f, &dom, OptLevel::O1, VerifyLevel::Full);
        prop_assert_eq!(
            fused.is_ok(), unfused.is_ok(),
            "fusion changed compilability of {}: fused {:?} vs unfused {:?}",
            f, fused.as_ref().err(), unfused.as_ref().err()
        );
        if let (Ok(cf), Ok(cu)) = (fused, unfused) {
            let arg = Value::nat_seq(xs.iter().copied());
            for backend in [Backend::Seq, Backend::Par] {
                if let (Some(rf), Some(ru)) =
                    (run_bounded(&cf, &arg, backend), run_bounded(&cu, &arg, backend))
                {
                    prop_assert_eq!(
                        rf, ru,
                        "fused and unfused runs diverge on {} ({} backend)",
                        f, backend.name()
                    );
                }
            }
        }
    }

    /// A chain of `k` `map`s over random total scalar bodies fuses to a
    /// single stage (`fused_stages = k-1`, and `0` on the unfused
    /// pipeline) and the fused kernel agrees with both the unfused one
    /// and the NSC evaluator on every input — division-by-zero faults
    /// classify identically as `Ω` everywhere.
    #[test]
    fn prop_map_chains_fuse_and_agree(
        words in proptest::collection::vec(0u64..u64::MAX, 1..20),
        k in 2u64..5,
        xs in proptest::collection::vec(0u64..20, 0..10),
    ) {
        use nsc::compile::{
            compile_nsc_unfused, compile_nsc_verified, run_compiled, run_compiled_on,
            Backend, OptLevel, VerifyLevel,
        };
        use nsc::core::ast as a;
        let mut w = Words { ws: &words, i: 0 };
        let mut body = a::var("v");
        for _ in 0..k {
            body = a::app(a::map(a::lam("x", gen_scalar_body(&mut w, 3))), body);
        }
        let f = a::lam("v", body);
        let dom = Type::seq(Type::Nat);
        let cf = compile_nsc_verified(&f, &dom, OptLevel::O1, VerifyLevel::Full).unwrap();
        let cu = compile_nsc_unfused(&f, &dom, OptLevel::O1, VerifyLevel::Full).unwrap();
        prop_assert_eq!(cf.fused_stages, (k - 1) as usize, "chain did not fully fuse: {}", f);
        prop_assert_eq!(cu.fused_stages, 0usize);
        let arg = Value::nat_seq(xs.iter().copied());
        for backend in [Backend::Seq, Backend::Par] {
            let rf = run_compiled_on(&cf, &arg, backend).map(|p| p.0);
            let ru = run_compiled_on(&cu, &arg, backend).map(|p| p.0);
            prop_assert_eq!(
                rf, ru,
                "fused and unfused map chains diverge on {} ({} backend)",
                f, backend.name()
            );
        }
        // The evaluator keeps fine-grained fault causes (`DivisionByZero`)
        // that the machine legitimately coarsens to `Ω`; what fusion must
        // preserve is success vs source-level fault, never a machine fault.
        let want = nsc::core::eval::apply_func(&f, arg.clone()).map(|p| p.0);
        let got = run_compiled(&cf, &arg).map(|p| p.0);
        match (&got, &want) {
            (Ok(g), Ok(v)) => prop_assert_eq!(g, v, "fused chain disagrees with the evaluator on {}", f),
            (Err(nsc::core::EvalError::Omega), Err(e)) => prop_assert!(
                !matches!(e, nsc::core::EvalError::MachineFault(_)),
                "evaluator reported a machine fault on {}: {:?}", f, e
            ),
            _ => prop_assert!(
                false,
                "fused chain fault behavior diverges from the evaluator on {}: {:?} vs {:?}",
                f, got, want
            ),
        }
    }

    /// The surface-syntax round trip: `parse(pretty(t)) == t` for random
    /// terms over every constructor, and likewise for functions.  Purely
    /// syntactic — the generated terms need not type check.
    #[test]
    fn prop_parse_pretty_roundtrip(words in proptest::collection::vec(0u64..u64::MAX, 1..40),
                                   depth in 1u64..6) {
        let mut w = Words { ws: &words, i: 0 };
        let t = gen_term(&mut w, depth);
        let printed = t.to_string();
        let back = nsc::core::parse::parse_term(&printed);
        prop_assert!(back.is_ok(), "printed term does not re-parse: {:?}\n{printed}", back.err());
        prop_assert_eq!(back.unwrap(), t, "round trip changed the term: {}", printed);

        let f = gen_func(&mut w, depth);
        let printed = f.to_string();
        let back = nsc::core::parse::parse_func(&printed);
        prop_assert!(back.is_ok(), "printed func does not re-parse: {:?}\n{printed}", back.err());
        prop_assert_eq!(back.unwrap(), f, "round trip changed the function: {}", printed);
    }

    /// Types round-trip through their `Display` form as well.
    #[test]
    fn prop_type_display_roundtrip(words in proptest::collection::vec(0u64..u64::MAX, 1..10),
                                   depth in 0u64..5) {
        let mut w = Words { ws: &words, i: 0 };
        let t = gen_type(&mut w, depth);
        prop_assert_eq!(nsc::core::parse::parse_type(&t.to_string()).unwrap(), t);
    }

    /// NSC evaluator and NSA translation agree on stdlib pipelines over
    /// random data (Proposition C.1 on values).
    #[test]
    fn prop_nsc_nsa_agree(xs in proptest::collection::vec(0u64..100, 0..40)) {
        use nsc::core::ast as a;
        let f = a::lam("x", nsc::core::stdlib::numeric::prefix_sum(a::var("x")));
        let arg = Value::nat_seq(xs);
        let (want, _) = nsc::core::eval::apply_func(&f, arg.clone()).unwrap();
        let g = nsc::algebra::nsa::from_nsc::func_to_nsa(&f).unwrap();
        let (got, _) = nsc::algebra::nsa::apply(&g, &arg).unwrap();
        prop_assert_eq!(got, want);
    }

    /// Definition 3.1 evaluator costs and compiled-BVRAM machine costs
    /// agree on the *direction* of the asymptotics on the end-to-end
    /// suite: both work measures grow strictly with input length, the
    /// evaluator's parallel time never decreases, and whenever the
    /// evaluator's time steps up (a new recursion/iteration level) the
    /// machine's step count steps up with it. (Machine steps are allowed
    /// a small wobble *within* a level: ragged divide-and-conquer splits
    /// make e.g. n=4 a few instructions cheaper than n=3.)
    #[test]
    fn prop_costs_monotone_in_input_size(n1 in 1u64..24, extra in 1u64..24) {
        let n2 = n1 + extra;
        // Inputs at n1 are a prefix of inputs at n2, so every per-element
        // quantity (e.g. while-iteration counts) is pointwise dominated.
        let arg = |n: u64| Value::nat_seq((0..n).map(|i| (i * 31) % 17));
        COMPILED_SUITE.with(|suite| {
            for (name, f, c) in suite {
                let (_, src1) = nsc::core::eval::apply_func(f, arg(n1)).unwrap();
                let (_, src2) = nsc::core::eval::apply_func(f, arg(n2)).unwrap();
                let (_, tgt1) = nsc::compile::run_compiled(c, &arg(n1)).unwrap();
                let (_, tgt2) = nsc::compile::run_compiled(c, &arg(n2)).unwrap();
                prop_assert!(
                    src2.work > src1.work,
                    "{name}: evaluator work not strictly monotone ({} at n={n1}, {} at n={n2})",
                    src1.work, src2.work
                );
                prop_assert!(
                    tgt2.work > tgt1.work,
                    "{name}: machine work not strictly monotone ({} at n={n1}, {} at n={n2})",
                    tgt1.work, tgt2.work
                );
                prop_assert!(
                    src2.time >= src1.time,
                    "{name}: evaluator time decreased ({} at n={n1}, {} at n={n2})",
                    src1.time, src2.time
                );
                if src2.time > src1.time {
                    prop_assert!(
                        tgt2.time > tgt1.time,
                        "{name}: evaluator time grew ({} -> {}) but machine steps did not \
                         ({} at n={n1}, {} at n={n2})",
                        src1.time, src2.time, tgt1.time, tgt2.time
                    );
                }
            }
            Ok(())
        })?;
    }

    /// Butterfly monotone routing delivers every packet and never
    /// congests (Proposition 2.1's obliviousness).
    #[test]
    fn prop_butterfly_monotone_oblivious(k in 1usize..100) {
        let net = nsc::net::Butterfly::for_size(2 * k);
        // any monotone injection src -> dst with dst >= src... use dst = min(2*src, rows-1) monotone
        let rows = net.rows();
        let packets: Vec<(usize, usize, u64)> = (0..k)
            .map(|i| (i, (2 * i).min(rows - 1), i as u64))
            .collect();
        // make strictly monotone to stay a valid packing pattern
        let mut last = 0usize;
        let packets: Vec<(usize, usize, u64)> = packets
            .into_iter()
            .enumerate()
            .map(|(i, (s, d, p))| {
                let d = d.max(last.min(rows - 1)).min(rows - 1);
                last = (d + 1).min(rows - 1);
                (s.min(rows - 1), d, p + i as u64 - i as u64)
            })
            .collect();
        let (_, stats) = net.route(&packets);
        prop_assert!(stats.max_congestion <= 1);
        prop_assert_eq!(stats.steps, rows.trailing_zeros() as u64);
    }
}
