//! `bvram::verify` over everything the repo ships: every runnable
//! stdlib function, every golden `.nsc` example, and the Map-Lemma
//! pack kernels must verify **clean** — no structural violations, no
//! uninit reads, no fall-off-the-end paths — at `O0` and at the
//! default optimization level.  A mutation check then corrupts a
//! verified program one instruction at a time and demands the verifier
//! name the program counter and the broken invariant, so the suite
//! would notice a verifier that "passes" by checking nothing.

use bvram::instr::Instr;
use bvram::{verify_program, Program};
use nsc_compile::{compile_nsc_with, optimize_checked, OptLevel, VerifyLevel};
use nsc_core::ast as a;
use nsc_core::parse::parse_module;
use nsc_core::types::Type;
use std::path::PathBuf;

mod common;
use common::typed_suite as suite;

/// Runs `f` on a thread with enough stack for the deepest stdlib
/// compilations (`map(combine_flags)` and friends), mirroring
/// `src/bin/nsc.rs`.
fn on_big_stack(f: fn()) {
    std::thread::Builder::new()
        .name("static-verify-worker".into())
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn worker")
        .join()
        .expect("worker panicked");
}

fn assert_clean(what: &str, prog: &Program) {
    let report = verify_program(prog);
    assert!(
        report.clean(),
        "{what} failed static verification:\n{report}"
    );
}

/// Every stdlib function compiles to a clean program, unoptimized and
/// optimized alike.
#[test]
fn stdlib_verifies_clean_at_o0_and_o1() {
    on_big_stack(|| {
        for (name, f, dom) in suite() {
            for level in [OptLevel::O0, OptLevel::O1] {
                let c = compile_nsc_with(&f, &dom, level)
                    .unwrap_or_else(|e| panic!("compiling {name} at {level:?}: {e}"));
                assert_clean(&format!("{name} at {level:?}"), &c.program);
            }
        }
    });
}

/// The Map-Lemma pack kernels `map(f) : [s] → [t]` — what the batch
/// runtime actually executes — verify clean as lowered and after the
/// per-pass-validated optimizer run the compiled-program cache performs.
#[test]
fn map_kernels_verify_clean() {
    on_big_stack(|| {
        for (name, f, dom) in suite() {
            let k0 = compile_nsc_with(&a::map(f), &Type::seq(dom), OptLevel::O0)
                .unwrap_or_else(|e| panic!("lowering map({name}): {e}"));
            assert_clean(&format!("map({name}) at O0"), &k0.program);
            // Mirror the cache's compile-latency guard: kernels past the
            // budget ship unoptimized, so optimizing them here would
            // verify a program no caller ever runs (and cost minutes).
            if k0.program.instrs.len() > nsc::runtime::KERNEL_OPT_BUDGET {
                continue;
            }
            let opt = optimize_checked(k0.program, OptLevel::O1, VerifyLevel::Full, name)
                .unwrap_or_else(|e| panic!("optimizing map({name}): {e}"));
            assert_clean(&format!("map({name}) at O1"), &opt);
        }
    });
}

/// Every golden example module compiles to a clean program at both
/// optimization levels.
#[test]
fn golden_examples_verify_clean() {
    on_big_stack(|| {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
        let mut seen = 0;
        for entry in std::fs::read_dir(dir).expect("examples/ directory") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_none_or(|e| e != "nsc") {
                continue;
            }
            seen += 1;
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).expect("read example");
            let module = parse_module(&src).unwrap_or_else(|e| panic!("parsing {name}: {e}"));
            let def = module.get("main").expect("examples define main");
            let pure = module
                .inlined("main")
                .unwrap_or_else(|e| panic!("inlining {name}: {e}"));
            for level in [OptLevel::O0, OptLevel::O1] {
                let c = compile_nsc_with(&pure, &def.dom, level)
                    .unwrap_or_else(|e| panic!("compiling {name} at {level:?}: {e}"));
                assert_clean(&format!("{name} at {level:?}"), &c.program);
            }
        }
        assert_eq!(seen, 5, "expected the five golden examples");
    });
}

/// A compiled, verified program with one corrupted instruction must
/// fail verification — and the report must name the corrupted pc and
/// the invariant it breaks, or the diagnostic is useless for hunting
/// miscompiles.
#[test]
fn mutation_is_caught_with_pc_and_invariant() {
    let inc = a::lam("x", a::add(a::var("x"), a::nat(1)));
    let clean = compile_nsc_with(&a::map(inc), &Type::seq(Type::Nat), OptLevel::O1)
        .expect("compile map(+1)")
        .program;
    assert!(verify_program(&clean).clean(), "baseline must be clean");

    // Miscompile 1: an operand outside the declared register file (a
    // structural violation — the machine would panic indexing it).
    let mut bad = clean.clone();
    let pc = bad
        .instrs
        .iter()
        .position(|i| matches!(i, Instr::Arith { .. }))
        .expect("optimized kernel has an Arith");
    let rogue = bad.n_regs as u32 + 7;
    let Instr::Arith { a, .. } = &mut bad.instrs[pc] else {
        unreachable!()
    };
    *a = rogue;
    let report = verify_program(&bad);
    assert!(!report.ok(), "out-of-bounds register must be a violation");
    let text = report.to_string();
    assert!(
        text.contains(&format!("pc {pc}")) && text.contains(&format!("v{rogue}")),
        "diagnostic must name the pc and the rogue register:\n{text}"
    );

    // Miscompile 2: a jump past one-past-the-end (a target *equal* to
    // the length is a legal fall-off; one past it is malformed).
    let mut bad = clean.clone();
    let pc = bad.instrs.len();
    bad.instrs.push(Instr::Goto {
        target: pc as u32 + 7,
    });
    let report = verify_program(&bad);
    assert!(!report.ok(), "out-of-range jump must be a violation");
    let text = report.to_string();
    assert!(
        text.contains(&format!("pc {pc}")) && text.contains("past the program end"),
        "diagnostic must name the pc and the invariant:\n{text}"
    );

    // Miscompile 3: a read of a register no path ever writes (the
    // machine zero-clears, so this silently computes on garbage — the
    // classic register-renaming bug a differential test can miss).
    let mut bad = clean.clone();
    let ghost = bad.n_regs as u32;
    bad.n_regs += 1;
    let pc = bad
        .instrs
        .iter()
        .position(|i| matches!(i, Instr::Arith { .. }))
        .expect("optimized kernel has an Arith");
    let Instr::Arith { a, .. } = &mut bad.instrs[pc] else {
        unreachable!()
    };
    *a = ghost;
    let report = verify_program(&bad);
    assert!(
        report.ok() && !report.clean(),
        "uninit read is a finding, not a structural violation:\n{report}"
    );
    assert!(
        report.uninit_reads.contains(&(pc, ghost)),
        "uninit read must be pinned to pc {pc}, register {ghost}:\n{report}"
    );
    assert!(
        report.to_string().contains("uninit read"),
        "rendered report must name the invariant"
    );
}
