//! `bvram::verify` over everything the repo ships: every runnable
//! stdlib function, every golden `.nsc` example, and the Map-Lemma
//! pack kernels must verify **clean** — no structural violations, no
//! uninit reads, no fall-off-the-end paths — at `O0` and at the
//! default optimization level.  A mutation check then corrupts a
//! verified program one instruction at a time and demands the verifier
//! name the program counter and the broken invariant, so the suite
//! would notice a verifier that "passes" by checking nothing.

use bvram::instr::Instr;
use bvram::{verify_program, Program};
use nsc_compile::{compile_nsc_with, optimize_checked, OptLevel, VerifyLevel};
use nsc_core::ast as a;
use nsc_core::parse::parse_module;
use nsc_core::stdlib;
use nsc_core::types::Type;
use nsc_core::Func;
use std::path::PathBuf;

/// Runs `f` on a thread with enough stack for the deepest stdlib
/// compilations (`map(combine_flags)` and friends), mirroring
/// `src/bin/nsc.rs`.
fn on_big_stack(f: fn()) {
    std::thread::Builder::new()
        .name("static-verify-worker".into())
        .stack_size(512 * 1024 * 1024)
        .spawn(f)
        .expect("spawn worker")
        .join()
        .expect("worker panicked");
}

/// Every runnable stdlib function with its domain — the same roster the
/// batch-equivalence suite runs, minus the input generators.
fn suite() -> Vec<(&'static str, Func, Type)> {
    let nn = Type::prod(Type::Nat, Type::Nat);
    let seq_n = Type::seq(Type::Nat);
    let gt0 = a::lam("p0", a::lt(a::nat(0), a::var("p0")));
    vec![
        ("pi1", stdlib::pi1(), Type::seq(nn.clone())),
        ("pi2", stdlib::pi2(), Type::seq(nn.clone())),
        (
            "broadcast",
            stdlib::broadcast(),
            Type::prod(Type::Nat, seq_n.clone()),
        ),
        (
            "sigma1",
            stdlib::sigma1(&Type::Nat),
            Type::seq(Type::sum(Type::Nat, Type::Nat)),
        ),
        (
            "sigma2",
            stdlib::sigma2(&Type::Nat),
            Type::seq(Type::sum(Type::Nat, Type::Nat)),
        ),
        ("filter(>0)", stdlib::filter(gt0, &Type::Nat), seq_n.clone()),
        (
            "index",
            a::lam(
                "p",
                stdlib::index(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
        ),
        (
            "index_split",
            a::lam(
                "p",
                stdlib::index_split(a::fst(a::var("p")), a::snd(a::var("p"))),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
        ),
        (
            "nth",
            a::lam(
                "p",
                stdlib::nth(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
        ),
        (
            "take",
            a::lam(
                "p",
                stdlib::take(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
        ),
        (
            "drop",
            a::lam(
                "p",
                stdlib::drop(a::fst(a::var("p")), a::snd(a::var("p")), &Type::Nat),
            ),
            Type::prod(seq_n.clone(), Type::Nat),
        ),
        (
            "first",
            a::lam("x", stdlib::first(a::var("x"), &Type::Nat)),
            seq_n.clone(),
        ),
        (
            "last",
            a::lam("x", stdlib::last(a::var("x"), &Type::Nat)),
            seq_n.clone(),
        ),
        (
            "tail",
            a::lam("x", stdlib::tail(a::var("x"), &Type::Nat)),
            seq_n.clone(),
        ),
        (
            "remove_last",
            a::lam("x", stdlib::remove_last(a::var("x"), &Type::Nat)),
            seq_n.clone(),
        ),
        (
            "isqrt_pow2",
            a::lam("x", stdlib::isqrt_pow2(a::var("x"))),
            Type::Nat,
        ),
        (
            "sum_seq",
            a::lam("x", stdlib::numeric::sum_seq(a::var("x"))),
            seq_n.clone(),
        ),
        (
            "maximum",
            a::lam("x", stdlib::maximum(a::var("x"))),
            seq_n.clone(),
        ),
        (
            "prefix_sum",
            a::lam("x", stdlib::prefix_sum(a::var("x"))),
            seq_n.clone(),
        ),
        (
            "bm_route",
            a::lam(
                "p",
                stdlib::bm_route(
                    a::fst(a::fst(a::var("p"))),
                    a::snd(a::fst(a::var("p"))),
                    a::snd(a::var("p")),
                ),
            ),
            Type::prod(Type::prod(seq_n.clone(), seq_n.clone()), seq_n.clone()),
        ),
        (
            "m_route",
            a::lam(
                "p",
                stdlib::m_route(a::fst(a::var("p")), a::snd(a::var("p"))),
            ),
            Type::prod(seq_n.clone(), seq_n.clone()),
        ),
        (
            "combine_flags",
            a::lam(
                "p",
                stdlib::combine_flags(
                    a::fst(a::var("p")),
                    a::fst(a::snd(a::var("p"))),
                    a::snd(a::snd(a::var("p"))),
                    &Type::Nat,
                ),
            ),
            Type::prod(
                Type::seq(Type::bool_()),
                Type::prod(seq_n.clone(), seq_n.clone()),
            ),
        ),
    ]
}

fn assert_clean(what: &str, prog: &Program) {
    let report = verify_program(prog);
    assert!(
        report.clean(),
        "{what} failed static verification:\n{report}"
    );
}

/// Every stdlib function compiles to a clean program, unoptimized and
/// optimized alike.
#[test]
fn stdlib_verifies_clean_at_o0_and_o1() {
    on_big_stack(|| {
        for (name, f, dom) in suite() {
            for level in [OptLevel::O0, OptLevel::O1] {
                let c = compile_nsc_with(&f, &dom, level)
                    .unwrap_or_else(|e| panic!("compiling {name} at {level:?}: {e}"));
                assert_clean(&format!("{name} at {level:?}"), &c.program);
            }
        }
    });
}

/// The Map-Lemma pack kernels `map(f) : [s] → [t]` — what the batch
/// runtime actually executes — verify clean as lowered and after the
/// per-pass-validated optimizer run the compiled-program cache performs.
#[test]
fn map_kernels_verify_clean() {
    on_big_stack(|| {
        for (name, f, dom) in suite() {
            let k0 = compile_nsc_with(&a::map(f), &Type::seq(dom), OptLevel::O0)
                .unwrap_or_else(|e| panic!("lowering map({name}): {e}"));
            assert_clean(&format!("map({name}) at O0"), &k0.program);
            // Mirror the cache's compile-latency guard: kernels past the
            // budget ship unoptimized, so optimizing them here would
            // verify a program no caller ever runs (and cost minutes).
            if k0.program.instrs.len() > nsc::runtime::KERNEL_OPT_BUDGET {
                continue;
            }
            let opt = optimize_checked(k0.program, OptLevel::O1, VerifyLevel::Full, name)
                .unwrap_or_else(|e| panic!("optimizing map({name}): {e}"));
            assert_clean(&format!("map({name}) at O1"), &opt);
        }
    });
}

/// Every golden example module compiles to a clean program at both
/// optimization levels.
#[test]
fn golden_examples_verify_clean() {
    on_big_stack(|| {
        let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples");
        let mut seen = 0;
        for entry in std::fs::read_dir(dir).expect("examples/ directory") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_none_or(|e| e != "nsc") {
                continue;
            }
            seen += 1;
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&path).expect("read example");
            let module = parse_module(&src).unwrap_or_else(|e| panic!("parsing {name}: {e}"));
            let def = module.get("main").expect("examples define main");
            let pure = module
                .inlined("main")
                .unwrap_or_else(|e| panic!("inlining {name}: {e}"));
            for level in [OptLevel::O0, OptLevel::O1] {
                let c = compile_nsc_with(&pure, &def.dom, level)
                    .unwrap_or_else(|e| panic!("compiling {name} at {level:?}: {e}"));
                assert_clean(&format!("{name} at {level:?}"), &c.program);
            }
        }
        assert_eq!(seen, 5, "expected the five golden examples");
    });
}

/// A compiled, verified program with one corrupted instruction must
/// fail verification — and the report must name the corrupted pc and
/// the invariant it breaks, or the diagnostic is useless for hunting
/// miscompiles.
#[test]
fn mutation_is_caught_with_pc_and_invariant() {
    let inc = a::lam("x", a::add(a::var("x"), a::nat(1)));
    let clean = compile_nsc_with(&a::map(inc), &Type::seq(Type::Nat), OptLevel::O1)
        .expect("compile map(+1)")
        .program;
    assert!(verify_program(&clean).clean(), "baseline must be clean");

    // Miscompile 1: an operand outside the declared register file (a
    // structural violation — the machine would panic indexing it).
    let mut bad = clean.clone();
    let pc = bad
        .instrs
        .iter()
        .position(|i| matches!(i, Instr::Arith { .. }))
        .expect("optimized kernel has an Arith");
    let rogue = bad.n_regs as u32 + 7;
    let Instr::Arith { a, .. } = &mut bad.instrs[pc] else {
        unreachable!()
    };
    *a = rogue;
    let report = verify_program(&bad);
    assert!(!report.ok(), "out-of-bounds register must be a violation");
    let text = report.to_string();
    assert!(
        text.contains(&format!("pc {pc}")) && text.contains(&format!("v{rogue}")),
        "diagnostic must name the pc and the rogue register:\n{text}"
    );

    // Miscompile 2: a jump past one-past-the-end (a target *equal* to
    // the length is a legal fall-off; one past it is malformed).
    let mut bad = clean.clone();
    let pc = bad.instrs.len();
    bad.instrs.push(Instr::Goto {
        target: pc as u32 + 7,
    });
    let report = verify_program(&bad);
    assert!(!report.ok(), "out-of-range jump must be a violation");
    let text = report.to_string();
    assert!(
        text.contains(&format!("pc {pc}")) && text.contains("past the program end"),
        "diagnostic must name the pc and the invariant:\n{text}"
    );

    // Miscompile 3: a read of a register no path ever writes (the
    // machine zero-clears, so this silently computes on garbage — the
    // classic register-renaming bug a differential test can miss).
    let mut bad = clean.clone();
    let ghost = bad.n_regs as u32;
    bad.n_regs += 1;
    let pc = bad
        .instrs
        .iter()
        .position(|i| matches!(i, Instr::Arith { .. }))
        .expect("optimized kernel has an Arith");
    let Instr::Arith { a, .. } = &mut bad.instrs[pc] else {
        unreachable!()
    };
    *a = ghost;
    let report = verify_program(&bad);
    assert!(
        report.ok() && !report.clean(),
        "uninit read is a finding, not a structural violation:\n{report}"
    );
    assert!(
        report.uninit_reads.contains(&(pc, ghost)),
        "uninit read must be pinned to pc {pc}, register {ghost}:\n{report}"
    );
    assert!(
        report.to_string().contains("uninit read"),
        "rendered report must name the invariant"
    );
}
