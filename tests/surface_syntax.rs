//! The surface-syntax contract, end to end:
//!
//! * `parse(pretty(f)) == f` over the whole standard library, the maprec
//!   fixtures (direct bodies *and* their Theorem 4.2 translations), and
//!   Valiant's mergesort;
//! * every `examples/*.nsc` golden file parses, type checks, evaluates,
//!   and compiles to the same value on both BVRAM backends;
//! * common syntax/type mistakes produce the snapshot error messages;
//! * the `nsc` CLI binary drives all of the above from the command line.

use nsc::compile::{compile_nsc, run_compiled_on, Backend};
use nsc::core::ast as a;
use nsc::core::eval::Evaluator;
use nsc::core::parse::{parse_func, parse_module, parse_term};
use nsc::core::stdlib;
use nsc::core::{Func, Type, Value};
use std::path::PathBuf;

fn roundtrip(name: &str, f: &Func) {
    let printed = f.to_string();
    let back = parse_func(&printed)
        .unwrap_or_else(|e| panic!("{name}: printed form does not re-parse: {e}\n{printed}"));
    assert_eq!(&back, f, "{name}: parse(pretty(f)) != f");
}

#[test]
fn stdlib_round_trips() {
    let n = Type::Nat;
    let cases: Vec<(&str, Func)> = vec![
        ("pi1", stdlib::basic::pi1()),
        ("pi2", stdlib::basic::pi2()),
        ("broadcast", stdlib::basic::broadcast()),
        ("sigma1", stdlib::basic::sigma1(&n)),
        ("sigma2", stdlib::basic::sigma2(&n)),
        (
            "filter",
            stdlib::basic::filter(a::lam("y", a::lt(a::var("y"), a::nat(5))), &n),
        ),
        (
            "prefix_sum",
            a::lam("x", stdlib::numeric::prefix_sum(a::var("x"))),
        ),
        (
            "sum_seq",
            a::lam("x", stdlib::numeric::sum_seq(a::var("x"))),
        ),
        (
            "maximum",
            a::lam("x", stdlib::numeric::maximum(a::var("x"))),
        ),
        (
            "isqrt_pow2",
            a::lam("x", stdlib::numeric::isqrt_pow2(a::var("x"))),
        ),
        (
            "index",
            a::lam(
                "x",
                stdlib::indexing::index(a::var("x"), a::singleton(a::nat(0)), &n),
            ),
        ),
        (
            "index_split",
            a::lam(
                "x",
                stdlib::indexing::index_split(a::var("x"), a::singleton(a::nat(0))),
            ),
        ),
        (
            "bm_route",
            a::lam(
                "x",
                stdlib::routing::bm_route(a::var("x"), a::var("x"), a::nat(3)),
            ),
        ),
        (
            "m_route",
            a::lam("x", stdlib::routing::m_route(a::var("x"), a::var("x"))),
        ),
        (
            "combine_flags",
            a::lam(
                "x",
                stdlib::routing::combine_flags(a::var("x"), a::var("x"), a::var("x"), &n),
            ),
        ),
        (
            "nth",
            a::lam("x", stdlib::lists::nth(a::var("x"), a::nat(0), &n)),
        ),
        (
            "take",
            a::lam("x", stdlib::lists::take(a::var("x"), a::nat(2), &n)),
        ),
        (
            "drop",
            a::lam("x", stdlib::lists::drop(a::var("x"), a::nat(2), &n)),
        ),
        ("first", a::lam("x", stdlib::lists::first(a::var("x"), &n))),
        ("last", a::lam("x", stdlib::lists::last(a::var("x"), &n))),
        ("tail", a::lam("x", stdlib::lists::tail(a::var("x"), &n))),
        (
            "remove_last",
            a::lam("x", stdlib::lists::remove_last(a::var("x"), &n)),
        ),
        (
            "lam2",
            stdlib::util::lam2("a", "b", a::monus(a::var("a"), a::var("b"))),
        ),
    ];
    for (name, f) in &cases {
        roundtrip(name, f);
    }
}

#[test]
fn maprec_fixtures_round_trip() {
    use nsc::core::maprec::{fixtures, translate::translate};
    for def in [
        fixtures::range_sum(),
        fixtures::range_sum3(),
        fixtures::staircase(),
    ] {
        roundtrip(&format!("maprec body {}", def.name), &def.body());
        roundtrip(&format!("maprec translated {}", def.name), &translate(&def));
    }
}

#[test]
fn valiant_mergesort_round_trips() {
    use nsc::core::maprec::translate::translate;
    for def in [
        nsc::algorithms::valiant::mergesort_def(),
        nsc::algorithms::valiant::direct_mergesort_def(),
    ] {
        roundtrip(&format!("{} body", def.name), &def.body());
        roundtrip(&format!("{} translated", def.name), &translate(&def));
    }
}

// ---------------------------------------------------------------------------
// Golden `.nsc` example files.
// ---------------------------------------------------------------------------

fn examples_src_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("examples")
}

/// Every golden file with its expected output on its embedded input.
fn golden() -> Vec<(&'static str, Value)> {
    vec![
        (
            "square_plus_one.nsc",
            Value::nat_seq([1, 2, 5, 10, 17, 26, 37, 50]),
        ),
        ("halve_all.nsc", Value::nat_seq([0, 0, 0, 0, 0, 0])),
        ("dot_product.nsc", Value::nat(300)),
        (
            "regroup.nsc",
            Value::seq(vec![
                Value::nat_seq([3, 5]),
                Value::nat_seq([]),
                Value::nat_seq([7, 9, 11]),
                Value::nat_seq([13]),
            ]),
        ),
        (
            "classify.nsc",
            Value::seq(vec![
                Value::bool_(true),
                Value::inr(Value::nat(3)),
                Value::bool_(true),
                Value::inr(Value::nat(7)),
                Value::bool_(true),
            ]),
        ),
    ]
}

#[test]
fn golden_list_is_exhaustive() {
    let mut found: Vec<String> = std::fs::read_dir(examples_src_dir())
        .expect("examples/ directory")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "nsc").then(|| p.file_name().unwrap().to_string_lossy().into_owned())
        })
        .collect();
    found.sort();
    let mut expected: Vec<String> = golden().iter().map(|(n, _)| n.to_string()).collect();
    expected.sort();
    assert_eq!(
        found, expected,
        "examples/*.nsc and the golden() table disagree; update both together"
    );
}

#[test]
fn golden_examples_run_on_both_backends() {
    for (name, want) in golden() {
        let src = std::fs::read_to_string(examples_src_dir().join(name)).unwrap();
        let module = parse_module(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        module.check().unwrap_or_else(|e| panic!("{name}: {e}"));
        let def = module
            .get("main")
            .unwrap_or_else(|| panic!("{name}: no main"));
        let input = module
            .input
            .clone()
            .unwrap_or_else(|| panic!("{name}: no input directive"));

        // Source semantics.
        let table = module.func_table();
        let (evaled, _) = Evaluator::new(&table)
            .apply_closed(&def.func, input.clone())
            .unwrap_or_else(|e| panic!("{name}: evaluator: {e}"));
        assert_eq!(evaled, want, "{name}: evaluator output");

        // Theorem 7.1 pipeline on both machines.
        let pure = module
            .inlined("main")
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let compiled = compile_nsc(&pure, &def.dom).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (seq_v, seq_c) = run_compiled_on(&compiled, &input, Backend::Seq)
            .unwrap_or_else(|e| panic!("{name}: seq: {e}"));
        let (par_v, par_c) = run_compiled_on(&compiled, &input, Backend::Par)
            .unwrap_or_else(|e| panic!("{name}: par: {e}"));
        assert_eq!(seq_v, want, "{name}: seq backend output");
        assert_eq!(par_v, want, "{name}: par backend output");
        assert_eq!(
            (seq_c.time, seq_c.work),
            (par_c.time, par_c.work),
            "{name}: backend stats diverge"
        );
    }
}

#[test]
fn golden_examples_round_trip_through_the_printer() {
    // Re-printing every definition of every example and re-parsing it
    // reproduces the AST — the .nsc files live inside the printable
    // fragment plus sugar, and sugar desugars to printable ASTs.
    for (name, _) in golden() {
        let src = std::fs::read_to_string(examples_src_dir().join(name)).unwrap();
        let module = parse_module(&src).unwrap();
        for def in &module.defs {
            roundtrip(&format!("{name}:{}", def.name), &def.func);
        }
    }
}

// ---------------------------------------------------------------------------
// Error-message snapshots.
// ---------------------------------------------------------------------------

#[test]
fn syntax_error_snapshots() {
    let cases: &[(&str, &str)] = &[
        (
            "[]",
            "parse error at 1:3: expected `:` in empty-sequence annotation `[]:t`, \
             found end of input",
        ),
        (
            "(xs @@ ys)",
            "parse error at 1:6: expected a term, found `@`",
        ),
        (
            "(1 - 2)",
            "parse error at 1:4: stray `-`: NSC has no subtraction, use monus `-.`",
        ),
        (
            "inl(3)",
            "parse error at 1:4: expected `:` in `inl:t(M)` (the annotation is the other \
             summand's type), found `(`",
        ),
        (
            "(case x of inl(y) => 1)",
            "parse error at 1:23: expected `|` in case, found `)`",
        ),
        (
            "(\\while. 1)",
            "parse error at 1:3: `while` is a reserved word and cannot name a lambda binder",
        ),
    ];
    for (src, want) in cases {
        let got = parse_term(src).unwrap_err().to_string();
        assert_eq!(&got, want, "snapshot changed for {src:?}");
    }
}

#[test]
fn module_error_snapshots() {
    // Type errors come from the module checker, positioned by definition.
    let m = parse_module("fn f : N -> B = (\\x. x)").unwrap();
    assert_eq!(
        m.check().unwrap_err().to_string(),
        "in `f`: declared codomain B but the body returns N"
    );
    let m = parse_module("fn f : N -> N = (\\x. (x + y))").unwrap();
    assert_eq!(
        m.check().unwrap_err().to_string(),
        "in `f`: unbound variable `y`"
    );
    let m = parse_module("fn f : [N] -> [N] = map((\\x. x)) fn f : N -> N = (\\x. x)");
    assert_eq!(
        m.unwrap_err().to_string(),
        "parse error at 1:37: duplicate definition of `f`"
    );
}

#[test]
fn compile_errors_surface_the_translation_cause() {
    // The satellite bugfix: an unbound variable must survive the trip
    // through compile_nsc instead of collapsing to "translation failed".
    let f = a::lam("x", a::add(a::var("x"), a::var("oops")));
    let err = compile_nsc(&f, &Type::Nat).unwrap_err();
    assert_eq!(
        err.to_string(),
        "NSC -> NSA translation failed: unbound variable `oops`"
    );
}

// ---------------------------------------------------------------------------
// The CLI binary.
// ---------------------------------------------------------------------------

/// The `target/<profile>/` directory holding the `nsc` binary.
fn nsc_bin() -> PathBuf {
    let mut p = std::env::current_exe().expect("test binary path");
    p.pop(); // deps/
    p.pop(); // <profile>/
    p.push("nsc");
    if !p.exists() {
        p.set_extension("exe");
    }
    p
}

#[test]
fn cli_runs_every_example_on_both_backends() {
    let bin = nsc_bin();
    assert!(bin.exists(), "nsc binary not found at {}", bin.display());
    for (name, want) in golden() {
        let path = examples_src_dir().join(name);
        let mut outputs = Vec::new();
        for backend in ["seq", "par"] {
            let out = std::process::Command::new(&bin)
                .arg("run")
                .arg(&path)
                .arg("--backend")
                .arg(backend)
                .output()
                .expect("spawn nsc");
            let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
            assert!(
                out.status.success(),
                "nsc run {name} --backend {backend} failed\n--- stdout ---\n{stdout}\n\
                 --- stderr ---\n{}",
                String::from_utf8_lossy(&out.stderr)
            );
            assert!(
                stdout.contains(&format!("result = {want}")),
                "nsc run {name}: expected `result = {want}` in\n{stdout}"
            );
            // Keep only backend-independent lines (drop the cost table's
            // backend-named row) and compare seq vs par verbatim.
            outputs.push(
                stdout
                    .lines()
                    .filter(|l| !l.contains("bvram/"))
                    .collect::<Vec<_>>()
                    .join("\n"),
            );
        }
        assert_eq!(outputs[0], outputs[1], "{name}: seq/par CLI output differs");
    }
}

#[test]
fn cli_check_and_compile_work() {
    let bin = nsc_bin();
    let path = examples_src_dir().join("square_plus_one.nsc");
    let out = std::process::Command::new(&bin)
        .arg("check")
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "fn main : [N] -> [N]"
    );
    let out = std::process::Command::new(&bin)
        .arg("compile")
        .arg(&path)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("bvram program"), "{text}");
    assert!(text.contains("halt"), "{text}");
}

#[test]
fn cli_reports_errors_with_nonzero_exit() {
    let bin = nsc_bin();
    // Unique per process: concurrent `cargo test` runs share temp_dir().
    let dir = std::env::temp_dir();
    let bad = dir.join(format!("__nsc_bad_example_{}.nsc", std::process::id()));
    std::fs::write(&bad, "fn main : N -> B = (\\x. x)").unwrap();
    let out = std::process::Command::new(&bin)
        .arg("run")
        .arg(&bad)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("declared codomain B"), "{err}");
    std::fs::remove_file(&bad).ok();

    let out = std::process::Command::new(&bin)
        .arg("run")
        .arg(examples_src_dir().join("square_plus_one.nsc"))
        .arg("--input")
        .arg("(1, 2)")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("does not inhabit"),
        "wrong-type input must be rejected"
    );

    // A non-recursive inlining failure must be a hard error, not a
    // "note: not compiled" with exit 0 — otherwise CI's backend diff
    // compares two empty cost tables and passes vacuously.
    let chain = dir.join(format!("__nsc_chain_example_{}.nsc", std::process::id()));
    let mut src = String::new();
    let (defs, per) = (60usize, 30usize);
    for i in 0..defs {
        let call = if i + 1 == defs {
            "x".to_string()
        } else {
            format!("c{}(x)", i + 1)
        };
        let body = format!("{}{call}{}", "fst((".repeat(per), ", 0))".repeat(per));
        src.push_str(&format!("fn c{i} : N -> N = (\\x. {body}) "));
    }
    src.push_str("input 1");
    std::fs::write(&chain, src).unwrap();
    let out = std::process::Command::new(&bin)
        .arg("run")
        .arg(&chain)
        .arg("--entry")
        .arg("c0")
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "an uncompilable non-recursive entry must fail nsc run"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("inlining"),
        "stderr must explain the inlining failure"
    );
    std::fs::remove_file(&chain).ok();

    // Run-only flags on other subcommands are rejected, not ignored.
    let out = std::process::Command::new(&bin)
        .arg("check")
        .arg(examples_src_dir().join("square_plus_one.nsc"))
        .arg("--backend")
        .arg("par")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("does not accept `--backend`"),
        "check must reject run-only flags"
    );
}

// ---------------------------------------------------------------------------
// `nsc lint` golden files and `nsc check --verify`.
// ---------------------------------------------------------------------------

fn lint_fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lint")
}

/// Every lint fixture's `nsc lint` output must match its `.expected`
/// golden byte-for-byte, and lints must not affect the exit status.
#[test]
fn cli_lint_matches_goldens() {
    let bin = nsc_bin();
    let mut fixtures: Vec<PathBuf> = std::fs::read_dir(lint_fixture_dir())
        .expect("tests/fixtures/lint directory")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "nsc").then_some(p)
        })
        .collect();
    fixtures.sort();
    assert_eq!(fixtures.len(), 4, "expected exactly four lint fixtures");
    for path in fixtures {
        let golden = std::fs::read_to_string(path.with_extension("expected"))
            .unwrap_or_else(|e| panic!("missing golden for {}: {e}", path.display()));
        let out = std::process::Command::new(&bin)
            .arg("lint")
            .arg(&path)
            .output()
            .expect("spawn nsc");
        assert!(
            out.status.success(),
            "nsc lint {} must exit 0 even with warnings",
            path.display()
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            golden,
            "nsc lint {} diverged from its golden",
            path.display()
        );
    }
}

fn cost_fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/cost")
}

/// Each shipped example's `nsc cost` output must match its golden under
/// `tests/fixtures/cost/` byte-for-byte.  The symbolic W'/T' bounds are
/// part of the CLI contract (CI diffs them as well), so an analyzer
/// precision regression — a bound collapsing to ⊤ or its degree jumping
/// — shows up here as a golden mismatch rather than silently degrading
/// plan selection.
#[test]
fn cli_cost_matches_goldens() {
    let bin = nsc_bin();
    for (name, _) in golden() {
        let stem = name.trim_end_matches(".nsc");
        let golden_path = cost_fixture_dir().join(format!("{stem}.cost"));
        let want = std::fs::read_to_string(&golden_path)
            .unwrap_or_else(|e| panic!("missing cost golden {}: {e}", golden_path.display()));
        let out = std::process::Command::new(&bin)
            .arg("cost")
            .arg(examples_src_dir().join(name))
            .output()
            .expect("spawn nsc");
        assert!(
            out.status.success(),
            "nsc cost {name} failed\n--- stderr ---\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert_eq!(
            String::from_utf8_lossy(&out.stdout),
            want,
            "nsc cost {name} diverged from its golden",
        );
    }
}

/// `nsc check --verify` compiles every definition and runs the static
/// verifier on the result; all shipped examples must come back clean,
/// and lint warnings must stay on stderr so stdout remains exactly the
/// signature listing.
#[test]
fn cli_check_verify_accepts_every_example() {
    let bin = nsc_bin();
    for (name, _) in golden() {
        let out = std::process::Command::new(&bin)
            .arg("check")
            .arg(examples_src_dir().join(name))
            .arg("--verify")
            .output()
            .expect("spawn nsc");
        assert!(
            out.status.success(),
            "nsc check {name} --verify failed\n--- stderr ---\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        for line in stdout.lines() {
            assert!(
                line.starts_with("fn "),
                "nsc check {name} --verify: unexpected stdout line {line:?}"
            );
        }
    }
}

/// Lint warnings ride along with `nsc check`, but on stderr: tooling
/// that consumes the signature listing must not see them.
#[test]
fn cli_check_reports_lints_on_stderr() {
    let bin = nsc_bin();
    let path = lint_fixture_dir().join("unused_def.nsc");
    let out = std::process::Command::new(&bin)
        .arg("check")
        .arg(&path)
        .output()
        .expect("spawn nsc");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("warning["),
        "lint warnings leaked onto check's stdout:\n{stdout}"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("warning[unused-def]"),
        "check must surface lint warnings on stderr"
    );
}
