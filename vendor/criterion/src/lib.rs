//! A minimal, API-compatible stand-in for the subset of [criterion] this
//! workspace uses. The build environment has no network access to a crates
//! registry, so the real crate cannot be fetched; this shim keeps the
//! `cargo bench` targets compiling and producing honest (if statistically
//! unsophisticated) wall-clock numbers.
//!
//! Each benchmark runs a short warm-up, then samples the closure
//! `sample_size` times, reporting the median per-iteration time to stdout
//! in a `criterion`-like line format. There are no HTML reports, outlier
//! rejection, or confidence intervals.
//!
//! [criterion]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver (configuration + reporting).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    /// Number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(self, &mut f);
        println!("{id:<40} {report}");
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` against a borrowed input under the given id.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        let report = run_bench(self.criterion, &mut |b: &mut Bencher| f(b, input));
        println!("{label:<40} {report}");
    }

    /// Benchmarks `f` with no input under the given id.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        let report = run_bench(self.criterion, &mut f);
        println!("{label:<40} {report}");
    }

    /// Ends the group (reporting is per-benchmark, so this is cosmetic).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; `iter` times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(cfg: &Criterion, f: &mut F) -> String {
    // Warm-up: run single iterations until the warm-up budget is spent,
    // which also calibrates how many iterations fit in one sample.
    let warm_start = Instant::now();
    let mut one = Duration::ZERO;
    let mut warm_runs = 0u32;
    while warm_start.elapsed() < cfg.warm_up_time || warm_runs == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        one += b.elapsed;
        warm_runs += 1;
        if warm_runs >= 1000 {
            break;
        }
    }
    let per_iter = one / warm_runs.max(1);
    let budget_per_sample = cfg.measurement_time / cfg.sample_size as u32;
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut samples: Vec<Duration> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed / iters as u32);
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    format!(
        "time: [{} {} {}]  ({} samples x {} iters)",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi),
        cfg.sample_size,
        iters
    )
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("f", 4), &4u64, |b, n| {
            b.iter(|| (0..*n).sum::<u64>());
        });
        g.finish();
    }
}
