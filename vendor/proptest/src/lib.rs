//! A minimal, API-compatible stand-in for the subset of [proptest] this
//! workspace uses. The build environment has no network access to a crates
//! registry, so the real crate cannot be fetched; this shim keeps the
//! property-test suites runnable.
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(...)]` header and `arg in strategy` bindings;
//! * [`strategy::Strategy`] implemented for integer ranges and
//!   [`collection::vec`] (arbitrarily nested);
//! * [`prop_assert!`] / [`prop_assert_eq!`] which fail the case with the
//!   generating inputs echoed;
//! * [`test_runner::TestRng`], a deterministic splitmix64 generator seeded
//!   per `(test name, case index)` so failures reproduce across runs.
//!
//! Unlike the real proptest there is **no shrinking**: a failing case
//! reports its inputs verbatim. Determinism makes that acceptable for CI.
//!
//! [proptest]: https://crates.io/crates/proptest

/// Everything a test module normally imports.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Per-suite configuration (number of cases per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; this shim picks a smaller
        // default so un-configured suites stay fast in CI.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic randomness for test-case generation.
pub mod test_runner {
    /// Error raised by `prop_assert!` family; aborts the current case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// splitmix64: tiny, fast, and plenty for test-case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded deterministically from a test name and case index.
        pub fn deterministic(name: &str, case: u64) -> Self {
            // FNV-1a over the name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng {
                state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform sample from `[lo, hi)`; `lo` when the range is empty.
        pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            if hi <= lo {
                return lo;
            }
            lo + self.next_u64() % (hi - lo)
        }
    }
}

/// The `Strategy` trait and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: std::fmt::Debug + Clone;
        /// Draws one value using `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// A strategy that always yields the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range_u64(self.start as u64, self.end as u64) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range_u64(*self.start() as u64, (*self.end() as u64).saturating_add(1)) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Anything usable as a collection size: a fixed size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: r.end().saturating_add(1),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right,
                    format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Declares property tests. See the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    // The body may have consumed the inputs; regenerate them
                    // from the same deterministic seed for the report, so
                    // passing cases pay no formatting cost.
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case,
                    );
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let inputs = format!(
                        concat!($("\n  ", stringify!($arg), " = {:?}",)*),
                        $(&$arg,)*
                    );
                    panic!(
                        "proptest case {case}/{total} for `{name}` failed: {e}\ninputs:{inputs}",
                        case = case,
                        total = cfg.cases,
                        name = stringify!($name),
                        e = e,
                        inputs = inputs,
                    );
                }
            }
        }
    )*};
}
