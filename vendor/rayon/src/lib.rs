//! A minimal, API-compatible stand-in for the subset of [rayon] this
//! workspace uses. The build environment has no network access to a crates
//! registry, so the real crate cannot be fetched; this shim keeps the
//! `bvram::par` backend compiling and semantically identical.
//!
//! Semantics:
//!
//! * `par_iter()` / `into_par_iter()` return the corresponding *standard*
//!   sequential iterators. Every combinator the workspace uses (`zip`,
//!   `map`, `filter`, `copied`, `sum`, `collect`) therefore behaves
//!   bit-for-bit like its rayon counterpart (rayon guarantees the same
//!   observable results as sequential iteration for these adapters).
//! * `par_chunks_mut(n)` performs *real* multi-threaded execution: its
//!   `enumerate().for_each(f)` distributes chunks over
//!   `std::thread::available_parallelism()` scoped threads, since disjoint
//!   `&mut` chunks are embarrassingly parallel.
//!
//! Replacing this shim with the real `rayon` is a one-line edit to the
//! workspace `Cargo.toml` once a registry is reachable.
//!
//! [rayon]: https://crates.io/crates/rayon

use std::sync::atomic::{AtomicUsize, Ordering};

/// The rayon prelude: traits that put `par_iter`-style methods in scope.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

/// Marker alias so `impl ParallelIterator` bounds read like rayon's.
///
/// In this shim every "parallel iterator" *is* a standard [`Iterator`], so
/// the trait is a blanket re-statement of `Iterator`.
pub trait ParallelIterator: Iterator {}
impl<I: Iterator> ParallelIterator for I {}

/// `collection.par_iter()` — shim: the standard shared-reference iterator.
pub trait IntoParallelRefIterator<'a> {
    /// Item type yielded by the iterator.
    type Item: 'a;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Returns a "parallel" iterator over shared references.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

/// `range.into_par_iter()` — shim: the value itself (already an iterator).
pub trait IntoParallelIterator {
    /// Item type yielded by the iterator.
    type Item;
    /// Concrete iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Converts `self` into a "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `slice.par_chunks_mut(n)` — genuinely parallel over scoped threads.
pub trait ParallelSliceMut<T: Send> {
    /// Splits the slice into chunks of at most `chunk_size` elements and
    /// returns a parallel iterator over them.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParChunksMut {
            slice: self,
            chunk_size,
        }
    }
}

/// Parallel iterator over disjoint mutable chunks of a slice.
pub struct ParChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    chunk_size: usize,
}

impl<'a, T: Send> ParChunksMut<'a, T> {
    /// Pairs each chunk with its index, preserving rayon's API shape.
    pub fn enumerate(self) -> EnumerateParChunksMut<'a, T> {
        EnumerateParChunksMut(self)
    }

    /// Runs `f` on every chunk, distributing chunks over scoped threads.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&mut [T]) + Sync,
    {
        self.enumerate().for_each(|(_, chunk)| f(chunk));
    }
}

/// The result of [`ParChunksMut::enumerate`].
pub struct EnumerateParChunksMut<'a, T: Send>(ParChunksMut<'a, T>);

/// A claimable work item: an indexed chunk behind a mutex so any worker
/// thread may take ownership of it exactly once.
type WorkCell<'a, T> = std::sync::Mutex<Option<(usize, &'a mut [T])>>;

impl<'a, T: Send> EnumerateParChunksMut<'a, T> {
    /// Runs `f` on every `(index, chunk)` pair in parallel.
    ///
    /// Chunks are handed out through an atomic work index so the load
    /// balances even when per-chunk cost varies.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn((usize, &mut [T])) + Sync,
    {
        let chunk_size = self.0.chunk_size;
        let mut chunks: Vec<(usize, &mut [T])> =
            self.0.slice.chunks_mut(chunk_size).enumerate().collect();
        if chunks.is_empty() {
            return;
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(chunks.len());
        if workers <= 1 {
            for item in chunks {
                f(item);
            }
            return;
        }
        // Wrap each work item so threads can claim them by index.
        let cells: Vec<WorkCell<'_, T>> = chunks
            .drain(..)
            .map(|c| std::sync::Mutex::new(Some(c)))
            .collect();
        let next = AtomicUsize::new(0);
        let f = &f;
        let cells = &cells;
        let next = &next;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let item = cells[i].lock().unwrap().take();
                    if let Some(item) = item {
                        f(item);
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v: Vec<u64> = (0..100).collect();
        let a: u64 = v.par_iter().sum();
        let b: u64 = v.iter().sum();
        assert_eq!(a, b);
    }

    #[test]
    fn into_par_iter_collects_range() {
        let got: Vec<u64> = (0u64..10).into_par_iter().collect();
        assert_eq!(got, (0u64..10).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_mut_touches_every_chunk_once() {
        let mut v = vec![0u64; 10_000];
        v.par_chunks_mut(64).enumerate().for_each(|(i, chunk)| {
            for (j, x) in chunk.iter_mut().enumerate() {
                *x = (i * 64 + j) as u64;
            }
        });
        assert!(v.iter().enumerate().all(|(i, x)| *x == i as u64));
    }

    #[test]
    fn par_chunks_mut_handles_empty_slice() {
        let mut v: Vec<u64> = Vec::new();
        v.par_chunks_mut(8)
            .for_each(|_| panic!("no chunks expected"));
    }
}
